"""Pretty-printer that turns the AST back into compilable C text.

Round-tripping is used by the pragma injector (to emit the kernel with the
agent's chosen hints), by the examples (to show the transformed code), and by
tests that check parse/print/parse stability.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast
from repro.frontend.ctypes import ArrayType, CType, PointerType
from repro.frontend.pragmas import format_pragma


class CPrinter:
    """Renders AST nodes as C source text with a configurable indent."""

    def __init__(self, indent: str = "    "):
        self.indent = indent

    # -- public API ----------------------------------------------------------

    def print_unit(self, unit: ast.TranslationUnit) -> str:
        parts: List[str] = []
        for decl in unit.globals:
            parts.append(self.print_global(decl))
        if unit.globals and unit.functions:
            parts.append("")
        for index, function in enumerate(unit.functions):
            if index:
                parts.append("")
            parts.append(self.print_function(function))
        return "\n".join(parts) + "\n"

    def print_global(self, decl: ast.VarDecl) -> str:
        text = self._declarator(decl.ctype, decl.name)
        for attribute in decl.attributes:
            text += f" __attribute__(({attribute}))"
        if decl.init is not None:
            text += f" = {self.print_expr(decl.init)}"
        return text + ";"

    def print_function(self, function: ast.FunctionDecl) -> str:
        lines: List[str] = []
        for attribute in function.attributes:
            lines.append(f"__attribute__(({attribute}))")
        params = ", ".join(
            self._declarator(param.ctype, param.name) for param in function.parameters
        )
        header = f"{function.return_type} {function.name}({params or ''})"
        if function.body is None:
            return "\n".join(lines + [header + ";"])
        lines.append(header + " {")
        lines.extend(self._print_block_body(function.body, 1))
        lines.append("}")
        return "\n".join(lines)

    def print_stmt(self, stmt: ast.Stmt, level: int = 0) -> str:
        return "\n".join(self._stmt_lines(stmt, level))

    def print_expr(self, expr: ast.Expr) -> str:
        return self._expr(expr)

    # -- statements ----------------------------------------------------------

    def _print_block_body(self, block: ast.CompoundStmt, level: int) -> List[str]:
        lines: List[str] = []
        for stmt in block.statements:
            lines.extend(self._stmt_lines(stmt, level))
        return lines

    def _stmt_lines(self, stmt: ast.Stmt, level: int) -> List[str]:
        pad = self.indent * level
        if isinstance(stmt, ast.CompoundStmt):
            lines = [pad + "{"]
            lines.extend(self._print_block_body(stmt, level + 1))
            lines.append(pad + "}")
            return lines
        if isinstance(stmt, ast.DeclStmt):
            rendered = []
            for decl in stmt.declarations:
                text = self._declarator(decl.ctype, decl.name)
                if decl.init is not None:
                    text += f" = {self._expr(decl.init)}"
                rendered.append(pad + text + ";")
            return rendered
        if isinstance(stmt, ast.ExprStmt):
            return [pad + self._expr(stmt.expr) + ";"]
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                return [pad + "return;"]
            return [pad + f"return {self._expr(stmt.value)};"]
        if isinstance(stmt, ast.BreakStmt):
            return [pad + "break;"]
        if isinstance(stmt, ast.ContinueStmt):
            return [pad + "continue;"]
        if isinstance(stmt, ast.PragmaStmt):
            return [pad + (format_pragma(stmt.pragma) if stmt.pragma else f"#pragma {stmt.raw_text}")]
        if isinstance(stmt, ast.ForStmt):
            return self._for_lines(stmt, level)
        if isinstance(stmt, ast.WhileStmt):
            lines = []
            if stmt.pragma is not None and not stmt.pragma.is_empty:
                lines.append(pad + format_pragma(stmt.pragma))
            lines.append(pad + f"while ({self._expr(stmt.condition)}) {{")
            lines.extend(self._body_lines(stmt.body, level + 1))
            lines.append(pad + "}")
            return lines
        if isinstance(stmt, ast.DoWhileStmt):
            lines = [pad + "do {"]
            lines.extend(self._body_lines(stmt.body, level + 1))
            lines.append(pad + f"}} while ({self._expr(stmt.condition)});")
            return lines
        if isinstance(stmt, ast.IfStmt):
            lines = [pad + f"if ({self._expr(stmt.condition)}) {{"]
            lines.extend(self._body_lines(stmt.then_branch, level + 1))
            if stmt.else_branch is not None:
                lines.append(pad + "} else {")
                lines.extend(self._body_lines(stmt.else_branch, level + 1))
            lines.append(pad + "}")
            return lines
        raise TypeError(f"cannot print statement of type {type(stmt).__name__}")

    def _for_lines(self, stmt: ast.ForStmt, level: int) -> List[str]:
        pad = self.indent * level
        lines: List[str] = []
        if stmt.pragma is not None and not stmt.pragma.is_empty:
            lines.append(pad + format_pragma(stmt.pragma))
        init = self._for_init(stmt.init)
        condition = self._expr(stmt.condition) if stmt.condition is not None else ""
        increment = self._expr(stmt.increment) if stmt.increment is not None else ""
        lines.append(pad + f"for ({init}; {condition}; {increment}) {{")
        lines.extend(self._body_lines(stmt.body, level + 1))
        lines.append(pad + "}")
        return lines

    def _for_init(self, init: Optional[ast.Stmt]) -> str:
        if init is None:
            return ""
        if isinstance(init, ast.ExprStmt):
            return self._expr(init.expr)
        if isinstance(init, ast.DeclStmt):
            rendered = []
            for decl in init.declarations:
                text = self._declarator(decl.ctype, decl.name)
                if decl.init is not None:
                    text += f" = {self._expr(decl.init)}"
                rendered.append(text)
            return ", ".join(rendered)
        return ""

    def _body_lines(self, body: Optional[ast.Stmt], level: int) -> List[str]:
        if body is None:
            return []
        if isinstance(body, ast.CompoundStmt):
            return self._print_block_body(body, level)
        return self._stmt_lines(body, level)

    # -- expressions ----------------------------------------------------------

    def _expr(self, expr: Optional[ast.Expr]) -> str:
        if expr is None:
            return ""
        if isinstance(expr, ast.IntLiteral):
            return str(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            text = repr(expr.value)
            return text
        if isinstance(expr, ast.CharLiteral):
            return f"'{chr(expr.value)}'" if 32 <= expr.value < 127 else str(expr.value)
        if isinstance(expr, ast.StringLiteral):
            return '"' + expr.value.replace('"', '\\"') + '"'
        if isinstance(expr, ast.Identifier):
            return expr.name
        if isinstance(expr, ast.ArraySubscript):
            return f"{self._expr(expr.base)}[{self._expr(expr.index)}]"
        if isinstance(expr, ast.UnaryOp):
            if expr.is_postfix:
                return f"{self._expr(expr.operand)}{expr.op}"
            return f"{expr.op}({self._expr(expr.operand)})" if expr.op in ("-", "!", "~", "*", "&") and isinstance(expr.operand, ast.BinaryOp) else f"{expr.op}{self._expr(expr.operand)}"
        if isinstance(expr, ast.BinaryOp):
            return f"({self._expr(expr.left)} {expr.op} {self._expr(expr.right)})"
        if isinstance(expr, ast.Assignment):
            return f"{self._expr(expr.target)} {expr.op} {self._expr(expr.value)}"
        if isinstance(expr, ast.TernaryOp):
            return (
                f"({self._expr(expr.condition)} ? "
                f"{self._expr(expr.then_value)} : {self._expr(expr.else_value)})"
            )
        if isinstance(expr, ast.Cast):
            return f"({expr.target_type}) {self._expr(expr.operand)}"
        if isinstance(expr, ast.Call):
            if expr.callee == "__init_list__":
                return "{" + ", ".join(self._expr(a) for a in expr.args) + "}"
            args = ", ".join(self._expr(argument) for argument in expr.args)
            return f"{expr.callee}({args})"
        if isinstance(expr, ast.SizeOf):
            if expr.target_type is not None:
                return f"sizeof({expr.target_type})"
            return f"sizeof({self._expr(expr.operand)})"
        raise TypeError(f"cannot print expression of type {type(expr).__name__}")

    # -- declarators -----------------------------------------------------------

    def _declarator(self, ctype: Optional[CType], name: str) -> str:
        if ctype is None:
            return f"int {name}"
        if isinstance(ctype, ArrayType):
            dims = "".join(f"[{d if d is not None else ''}]" for d in ctype.dims)
            return f"{ctype.element} {name}{dims}"
        if isinstance(ctype, PointerType):
            return f"{ctype.pointee} *{name}"
        return f"{ctype} {name}"


def print_unit(unit: ast.TranslationUnit) -> str:
    """Render a translation unit to C source text."""
    return CPrinter().print_unit(unit)


def print_stmt(stmt: ast.Stmt) -> str:
    """Render a single statement (e.g. a loop) to C source text."""
    return CPrinter().print_stmt(stmt)


def print_expr(expr: ast.Expr) -> str:
    """Render a single expression to C source text."""
    return CPrinter().print_expr(expr)
