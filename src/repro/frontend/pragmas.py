"""Parsing and formatting of ``#pragma clang loop`` vectorization hints.

The RL agent realises its actions by injecting pragmas of the form::

    #pragma clang loop vectorize_width(VF) interleave_count(IF)

immediately before the loop it wants to influence (Figure 4 of the paper).
This module is the single source of truth for reading and writing that
syntax, both in raw source text (for the pragma injector) and in the token
stream (for the parser).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional


#: Matches the clause list of a clang loop pragma.
_CLAUSE_RE = re.compile(r"([a-zA-Z_]+)\s*\(\s*([a-zA-Z0-9_]+)\s*\)")
_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+clang\s+loop\b(.*)$")


@dataclass(frozen=True)
class LoopPragma:
    """A ``#pragma clang loop`` directive relevant to loop optimization.

    Attributes mirror clang's clauses:

    * ``vectorize_width`` — the requested VF (``None`` if absent).
    * ``interleave_count`` — the requested IF (``None`` if absent).
    * ``vectorize_enable`` — explicit enable/disable (``None`` if absent).
    * ``unroll_count`` — the requested unroll factor (``None`` if absent).
      Clang's interleave *is* unroll-and-jam of the (vector) loop, so an
      ``unroll_count`` without an explicit ``interleave_count`` requests
      that unroll factor for the loop; ``unroll_count(1)`` disables
      unrolling, as in clang.
    """

    vectorize_width: Optional[int] = None
    interleave_count: Optional[int] = None
    vectorize_enable: Optional[bool] = None
    unroll_count: Optional[int] = None

    @property
    def is_empty(self) -> bool:
        return (
            self.vectorize_width is None
            and self.interleave_count is None
            and self.vectorize_enable is None
            and self.unroll_count is None
        )

    def merged_with(self, other: "LoopPragma") -> "LoopPragma":
        """Combine two pragmas attached to the same loop; ``other`` wins."""
        return LoopPragma(
            vectorize_width=(
                other.vectorize_width
                if other.vectorize_width is not None
                else self.vectorize_width
            ),
            interleave_count=(
                other.interleave_count
                if other.interleave_count is not None
                else self.interleave_count
            ),
            vectorize_enable=(
                other.vectorize_enable
                if other.vectorize_enable is not None
                else self.vectorize_enable
            ),
            unroll_count=(
                other.unroll_count
                if other.unroll_count is not None
                else self.unroll_count
            ),
        )

    def __str__(self) -> str:
        return format_pragma(self)


def format_pragma(pragma: LoopPragma) -> str:
    """Render a :class:`LoopPragma` back to clang pragma syntax."""
    clauses = []
    if pragma.vectorize_enable is not None:
        clauses.append(
            f"vectorize(enable)" if pragma.vectorize_enable else "vectorize(disable)"
        )
    if pragma.vectorize_width is not None:
        clauses.append(f"vectorize_width({pragma.vectorize_width})")
    if pragma.interleave_count is not None:
        clauses.append(f"interleave_count({pragma.interleave_count})")
    if pragma.unroll_count is not None:
        clauses.append(f"unroll_count({pragma.unroll_count})")
    body = " ".join(clauses)
    return f"#pragma clang loop {body}".rstrip()


def parse_pragma_text(text: str) -> Optional[LoopPragma]:
    """Parse one source line; return a :class:`LoopPragma` or ``None``.

    Lines that are pragmas but not ``clang loop`` pragmas (e.g. ``#pragma
    omp``) return ``None`` — the caller is expected to ignore them, exactly
    as the paper's framework only manipulates clang loop hints.
    """
    match = _PRAGMA_RE.match(text)
    if match is None:
        return None
    clause_text = match.group(1)
    vectorize_width: Optional[int] = None
    interleave_count: Optional[int] = None
    vectorize_enable: Optional[bool] = None
    unroll_count: Optional[int] = None
    for name, argument in _CLAUSE_RE.findall(clause_text):
        if name == "vectorize_width":
            vectorize_width = _parse_positive_int(argument)
        elif name == "interleave_count":
            interleave_count = _parse_positive_int(argument)
        elif name == "vectorize":
            vectorize_enable = argument.lower() == "enable"
        elif name == "unroll_count":
            unroll_count = _parse_positive_int(argument)
    return LoopPragma(
        vectorize_width, interleave_count, vectorize_enable, unroll_count
    )


def _parse_positive_int(text: str) -> Optional[int]:
    try:
        value = int(text, 0)
    except ValueError:
        return None
    return value if value > 0 else None
