"""Source locations, diagnostics and frontend exception types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A position in a source file (1-based line and column)."""

    line: int = 1
    column: int = 1
    filename: str = "<source>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


@dataclass(frozen=True)
class SourceSpan:
    """A half-open range of source text, used to attach AST nodes to text."""

    start: SourceLocation
    end: SourceLocation

    def __str__(self) -> str:
        return f"{self.start}-{self.end.line}:{self.end.column}"

    @staticmethod
    def merge(first: "SourceSpan", second: "SourceSpan") -> "SourceSpan":
        """Return the smallest span covering both inputs."""
        start = min(first.start, second.start)
        end = max(first.end, second.end)
        return SourceSpan(start, end)


class CompileError(Exception):
    """Base class for all errors raised by the frontend and middle end."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexError(CompileError):
    """Raised when the lexer encounters a character it cannot tokenize."""


class ParseError(CompileError):
    """Raised when the parser cannot make sense of the token stream."""


class SemanticError(CompileError):
    """Raised by semantic analysis (undeclared names, bad types, ...)."""


class LoweringError(CompileError):
    """Raised when an AST construct cannot be lowered to the loop IR."""


@dataclass
class Diagnostic:
    """A single warning or error message with an optional source location."""

    severity: str
    message: str
    location: Optional[SourceLocation] = None

    def __str__(self) -> str:
        prefix = f"{self.location}: " if self.location else ""
        return f"{prefix}{self.severity}: {self.message}"


@dataclass
class DiagnosticEngine:
    """Collects warnings and errors emitted during compilation.

    Errors are recorded *and* raised (the frontend is not error-recovering);
    warnings are only recorded so callers can inspect them afterwards.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def warn(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.diagnostics.append(Diagnostic("warning", message, location))

    def error(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.diagnostics.append(Diagnostic("error", message, location))
        raise SemanticError(message, location)

    def note(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.diagnostics.append(Diagnostic("note", message, location))

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def clear(self) -> None:
        self.diagnostics.clear()
