"""Token kinds and the Token record produced by the lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.frontend.errors import SourceLocation


class TokenKind(enum.Enum):
    """Every lexical category the C-subset lexer can produce."""

    # Literals and identifiers.
    IDENTIFIER = "identifier"
    INT_LITERAL = "int_literal"
    FLOAT_LITERAL = "float_literal"
    CHAR_LITERAL = "char_literal"
    STRING_LITERAL = "string_literal"
    KEYWORD = "keyword"

    # Punctuation / operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMICOLON = ";"
    COMMA = ","
    QUESTION = "?"
    COLON = ":"

    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    AND_ASSIGN = "&="
    OR_ASSIGN = "|="
    XOR_ASSIGN = "^="
    SHL_ASSIGN = "<<="
    SHR_ASSIGN = ">>="

    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    SHL = "<<"
    SHR = ">>"

    LOGICAL_AND = "&&"
    LOGICAL_OR = "||"

    EQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="

    INCREMENT = "++"
    DECREMENT = "--"
    ARROW = "->"
    DOT = "."

    PRAGMA = "pragma"
    EOF = "eof"


#: Keywords recognised by the lexer.  ``IDENTIFIER`` tokens whose text is in
#: this set are re-tagged as ``KEYWORD``.
KEYWORDS = frozenset(
    {
        "void",
        "char",
        "short",
        "int",
        "long",
        "float",
        "double",
        "signed",
        "unsigned",
        "const",
        "volatile",
        "static",
        "extern",
        "restrict",
        "struct",
        "return",
        "if",
        "else",
        "for",
        "while",
        "do",
        "break",
        "continue",
        "sizeof",
        "__attribute__",
        "__restrict__",
        "inline",
        "typedef",
    }
)

#: Multi-character operators ordered longest-first so maximal munch works.
MULTI_CHAR_OPERATORS = [
    ("<<=", TokenKind.SHL_ASSIGN),
    (">>=", TokenKind.SHR_ASSIGN),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.LOGICAL_AND),
    ("||", TokenKind.LOGICAL_OR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AND_ASSIGN),
    ("|=", TokenKind.OR_ASSIGN),
    ("^=", TokenKind.XOR_ASSIGN),
    ("++", TokenKind.INCREMENT),
    ("--", TokenKind.DECREMENT),
    ("->", TokenKind.ARROW),
]

SINGLE_CHAR_OPERATORS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMICOLON,
    ",": TokenKind.COMMA,
    "?": TokenKind.QUESTION,
    ":": TokenKind.COLON,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "~": TokenKind.TILDE,
    "!": TokenKind.BANG,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    ".": TokenKind.DOT,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded literal value for number/char literals and
    the raw text for identifiers, keywords and pragmas.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    value: Union[int, float, str, None] = None

    def is_keyword(self, name: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind.name}, {self.text!r}, {self.location})"
