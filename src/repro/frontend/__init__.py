"""C-subset frontend used by the NeuroVectorizer reproduction.

The paper's dataset consists of C loop kernels (see §3.2).  This package
provides everything needed to read those kernels without shelling out to
clang: a preprocessor for the tiny amount of preprocessing the kernels use
(`#define`, comments, pragmas), a lexer, a recursive-descent parser producing
a typed AST, and a light semantic-analysis pass that resolves symbols and
array shapes.

Typical use::

    from repro.frontend import parse_source
    unit = parse_source(source_text, filename="kernel.c")
    for func in unit.functions:
        ...
"""

from repro.frontend.errors import (
    CompileError,
    Diagnostic,
    DiagnosticEngine,
    ParseError,
    SemanticError,
    SourceLocation,
    SourceSpan,
)
from repro.frontend.lexer import Lexer, tokenize
from repro.frontend.parser import Parser, parse_source
from repro.frontend.pragmas import LoopPragma, format_pragma, parse_pragma_text
from repro.frontend.preprocessor import Preprocessor, preprocess
from repro.frontend.ctypes import (
    ArrayType,
    CType,
    FloatType,
    IntType,
    PointerType,
    TypeKind,
    VoidType,
)
from repro.frontend import ast
from repro.frontend.cache import (
    FrontendCache,
    FrontendCacheStats,
    frontend_cache,
    source_fingerprint,
)

__all__ = [
    "FrontendCache",
    "FrontendCacheStats",
    "frontend_cache",
    "source_fingerprint",
    "CompileError",
    "Diagnostic",
    "DiagnosticEngine",
    "ParseError",
    "SemanticError",
    "SourceLocation",
    "SourceSpan",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_source",
    "LoopPragma",
    "format_pragma",
    "parse_pragma_text",
    "Preprocessor",
    "preprocess",
    "ArrayType",
    "CType",
    "FloatType",
    "IntType",
    "PointerType",
    "TypeKind",
    "VoidType",
    "ast",
]
