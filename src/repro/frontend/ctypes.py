"""A small C type system: integer, floating, pointer and array types.

The simulator's cost model needs element sizes and signedness (for widening
conversions and gather widths), and the vectorizer needs to know how many
lanes of a given element type fit in a vector register; everything else about
C's type system is intentionally out of scope.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class TypeKind(enum.Enum):
    VOID = "void"
    INT = "int"
    FLOAT = "float"
    POINTER = "pointer"
    ARRAY = "array"


@dataclass(frozen=True)
class CType:
    """Base class for all types.  Concrete subclasses are frozen dataclasses."""

    def __post_init__(self) -> None:
        pass

    @property
    def kind(self) -> TypeKind:
        raise NotImplementedError

    @property
    def size_bytes(self) -> int:
        """Size of one object of this type, in bytes."""
        raise NotImplementedError

    @property
    def is_integer(self) -> bool:
        return self.kind == TypeKind.INT

    @property
    def is_float(self) -> bool:
        return self.kind == TypeKind.FLOAT

    @property
    def is_arithmetic(self) -> bool:
        return self.is_integer or self.is_float

    @property
    def is_pointer(self) -> bool:
        return self.kind == TypeKind.POINTER

    @property
    def is_array(self) -> bool:
        return self.kind == TypeKind.ARRAY

    @property
    def is_void(self) -> bool:
        return self.kind == TypeKind.VOID


@dataclass(frozen=True)
class VoidType(CType):
    @property
    def kind(self) -> TypeKind:
        return TypeKind.VOID

    @property
    def size_bytes(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    """Integer type of a given width and signedness (char/short/int/long)."""

    bits: int = 32
    signed: bool = True

    @property
    def kind(self) -> TypeKind:
        return TypeKind.INT

    @property
    def size_bytes(self) -> int:
        return self.bits // 8

    def __str__(self) -> str:
        names = {8: "char", 16: "short", 32: "int", 64: "long"}
        base = names.get(self.bits, f"int{self.bits}")
        return base if self.signed else f"unsigned {base}"


@dataclass(frozen=True)
class FloatType(CType):
    """Floating-point type (float = 32 bits, double = 64 bits)."""

    bits: int = 32

    @property
    def kind(self) -> TypeKind:
        return TypeKind.FLOAT

    @property
    def size_bytes(self) -> int:
        return self.bits // 8

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType = field(default_factory=lambda: IntType())

    @property
    def kind(self) -> TypeKind:
        return TypeKind.POINTER

    @property
    def size_bytes(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CType):
    """Possibly multi-dimensional array.  ``dims`` entries may be None for
    arrays whose extent is unknown at parse time (e.g. function parameters
    declared as ``int a[]``)."""

    element: CType = field(default_factory=lambda: IntType())
    dims: Tuple[Optional[int], ...] = (None,)

    @property
    def kind(self) -> TypeKind:
        return TypeKind.ARRAY

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def size_bytes(self) -> int:
        total = self.element.size_bytes
        for dim in self.dims:
            total *= dim if dim is not None else 1
        return total

    @property
    def element_count(self) -> int:
        count = 1
        for dim in self.dims:
            count *= dim if dim is not None else 1
        return count

    def __str__(self) -> str:
        dims = "".join(f"[{d if d is not None else ''}]" for d in self.dims)
        return f"{self.element}{dims}"


# Commonly used singleton-ish types.
VOID = VoidType()
CHAR = IntType(8, True)
UCHAR = IntType(8, False)
SHORT = IntType(16, True)
USHORT = IntType(16, False)
INT = IntType(32, True)
UINT = IntType(32, False)
LONG = IntType(64, True)
ULONG = IntType(64, False)
FLOAT = FloatType(32)
DOUBLE = FloatType(64)


_SPECIFIER_TABLE = {
    ("void",): VOID,
    ("char",): CHAR,
    ("signed", "char"): CHAR,
    ("unsigned", "char"): UCHAR,
    ("short",): SHORT,
    ("short", "int"): SHORT,
    ("unsigned", "short"): USHORT,
    ("unsigned", "short", "int"): USHORT,
    ("int",): INT,
    ("signed",): INT,
    ("signed", "int"): INT,
    ("unsigned",): UINT,
    ("unsigned", "int"): UINT,
    ("long",): LONG,
    ("long", "int"): LONG,
    ("long", "long"): LONG,
    ("long", "long", "int"): LONG,
    ("unsigned", "long"): ULONG,
    ("unsigned", "long", "int"): ULONG,
    ("unsigned", "long", "long"): ULONG,
    ("float",): FLOAT,
    ("double",): DOUBLE,
    ("long", "double"): DOUBLE,
}


def type_from_specifiers(specifiers: List[str]) -> Optional[CType]:
    """Map a list of C type specifier keywords to a :class:`CType`.

    Qualifiers (``const``, ``volatile``, ``static``, ``extern``, ``restrict``)
    are ignored; order of the remaining specifiers does not matter.  Returns
    ``None`` when the specifiers do not name a supported type.
    """
    qualifiers = {"const", "volatile", "static", "extern", "restrict", "inline",
                  "__restrict__"}
    relevant = [s for s in specifiers if s not in qualifiers]
    if not relevant:
        return None
    # Normalise: sort with "unsigned"/"signed" first, then size keywords.
    order = {"signed": 0, "unsigned": 0, "short": 1, "long": 1, "char": 2,
             "int": 2, "float": 2, "double": 2, "void": 2}
    relevant_sorted = tuple(sorted(relevant, key=lambda s: (order.get(s, 3), s)))
    for key, ctype in _SPECIFIER_TABLE.items():
        if tuple(sorted(key, key=lambda s: (order.get(s, 3), s))) == relevant_sorted:
            return ctype
    # ``long long`` style duplicates collapse to the same entry.
    deduped = tuple(sorted(set(relevant), key=lambda s: (order.get(s, 3), s)))
    for key, ctype in _SPECIFIER_TABLE.items():
        if tuple(sorted(set(key), key=lambda s: (order.get(s, 3), s))) == deduped:
            return ctype
    return None


def common_type(left: CType, right: CType) -> CType:
    """Usual arithmetic conversions for a binary operator's operand types."""
    if left.is_float or right.is_float:
        bits = max(
            left.bits if isinstance(left, FloatType) else 0,
            right.bits if isinstance(right, FloatType) else 0,
            32,
        )
        return FloatType(bits)
    if isinstance(left, IntType) and isinstance(right, IntType):
        bits = max(left.bits, right.bits, 32)
        signed = left.signed and right.signed
        return IntType(bits, signed)
    if left.is_pointer:
        return left
    if right.is_pointer:
        return right
    return INT


def is_widening_conversion(src: CType, dst: CType) -> bool:
    """True when converting ``src`` to ``dst`` widens the element (e.g.
    short -> int, float -> double, int -> float)."""
    if src.is_void or dst.is_void:
        return False
    if src.is_integer and dst.is_float:
        return True
    if src.is_integer and dst.is_integer:
        return dst.size_bytes > src.size_bytes
    if src.is_float and dst.is_float:
        return dst.size_bytes > src.size_bytes
    return False
