"""Recursive-descent parser for the C subset used by the loop kernels."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend import ast
from repro.frontend.ctypes import (
    ArrayType,
    CType,
    INT,
    PointerType,
    type_from_specifiers,
)
from repro.frontend.errors import ParseError, SourceLocation, SourceSpan
from repro.frontend.lexer import tokenize
from repro.frontend.pragmas import LoopPragma, parse_pragma_text
from repro.frontend.preprocessor import preprocess
from repro.frontend.tokens import Token, TokenKind

#: Binary operator precedence (larger binds tighter); mirrors C.
_BINARY_PRECEDENCE: Dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGNMENT_KINDS = {
    TokenKind.ASSIGN: "=",
    TokenKind.PLUS_ASSIGN: "+=",
    TokenKind.MINUS_ASSIGN: "-=",
    TokenKind.STAR_ASSIGN: "*=",
    TokenKind.SLASH_ASSIGN: "/=",
    TokenKind.PERCENT_ASSIGN: "%=",
    TokenKind.AND_ASSIGN: "&=",
    TokenKind.OR_ASSIGN: "|=",
    TokenKind.XOR_ASSIGN: "^=",
    TokenKind.SHL_ASSIGN: "<<=",
    TokenKind.SHR_ASSIGN: ">>=",
}

_TYPE_KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double", "signed",
    "unsigned", "const", "volatile", "static", "extern", "restrict", "inline",
    "__restrict__",
}


class Parser:
    """Parses a token stream into a :class:`repro.frontend.ast.TranslationUnit`."""

    def __init__(self, tokens: List[Token], filename: str = "<source>"):
        self.tokens = tokens
        self.filename = filename
        self.index = 0

    # -- token stream helpers ----------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != TokenKind.EOF:
            self.index += 1
        return token

    def _check(self, kind: TokenKind, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _match(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        token = self._peek()
        expected = text if text is not None else kind.value
        raise ParseError(
            f"expected {expected!r} but found {token.text!r}", token.location
        )

    def _span(self, start: SourceLocation) -> SourceSpan:
        return SourceSpan(start, self._peek().location)

    def _at_type_start(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.kind == TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS

    # -- top level -----------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(filename=self.filename)
        while not self._check(TokenKind.EOF):
            if self._check(TokenKind.PRAGMA):
                # Stray pragma at file scope: keep going (it binds to nothing).
                self._advance()
                continue
            if self._check(TokenKind.SEMICOLON):
                self._advance()
                continue
            if self._peek().is_keyword("typedef"):
                self._skip_to_semicolon()
                continue
            if self._peek().is_keyword("struct"):
                self._skip_to_semicolon()
                continue
            self._parse_external_declaration(unit)
        return unit

    def _skip_to_semicolon(self) -> None:
        depth = 0
        while not self._check(TokenKind.EOF):
            token = self._advance()
            if token.kind == TokenKind.LBRACE:
                depth += 1
            elif token.kind == TokenKind.RBRACE:
                depth -= 1
            elif token.kind == TokenKind.SEMICOLON and depth <= 0:
                return

    def _parse_external_declaration(self, unit: ast.TranslationUnit) -> None:
        start = self._peek().location
        leading_attributes = self._parse_attributes()
        base_type, specifiers = self._parse_declaration_specifiers()
        if base_type is None:
            raise ParseError(
                f"expected a declaration but found {self._peek().text!r}",
                self._peek().location,
            )
        attributes = leading_attributes + self._parse_attributes()
        name_token = self._expect(TokenKind.IDENTIFIER)
        name = name_token.text

        if self._check(TokenKind.LPAREN):
            function = self._parse_function_rest(name, base_type, attributes, start)
            unit.functions.append(function)
            return

        # One or more global variable declarators.
        while True:
            ctype = self._parse_array_suffix(base_type)
            attributes = attributes + self._parse_attributes()
            init: Optional[ast.Expr] = None
            if self._match(TokenKind.ASSIGN):
                init = self._parse_initializer()
            decl = ast.VarDecl(
                span=self._span(start),
                name=name,
                ctype=ctype,
                init=init,
                attributes=attributes,
                is_global=True,
            )
            unit.globals.append(decl)
            if self._match(TokenKind.COMMA):
                name = self._expect(TokenKind.IDENTIFIER).text
                continue
            self._expect(TokenKind.SEMICOLON)
            return

    def _parse_declaration_specifiers(self) -> Tuple[Optional[CType], List[str]]:
        specifiers: List[str] = []
        while self._at_type_start():
            specifiers.append(self._advance().text)
        pointer_depth = 0
        while self._check(TokenKind.STAR):
            self._advance()
            pointer_depth += 1
            # Allow qualifiers after '*', e.g. ``int * restrict p``.
            while self._at_type_start() and self._peek().text in (
                "const", "volatile", "restrict", "__restrict__"
            ):
                self._advance()
        if not specifiers:
            return None, specifiers
        base = type_from_specifiers(specifiers)
        if base is None:
            raise ParseError(
                f"unsupported type specifiers {' '.join(specifiers)!r}",
                self._peek().location,
            )
        ctype: CType = base
        for _ in range(pointer_depth):
            ctype = PointerType(ctype)
        return ctype, specifiers

    def _parse_attributes(self) -> List[str]:
        attributes: List[str] = []
        while self._peek().is_keyword("__attribute__"):
            self._advance()
            self._expect(TokenKind.LPAREN)
            self._expect(TokenKind.LPAREN)
            depth = 2
            parts: List[str] = []
            while depth > 0 and not self._check(TokenKind.EOF):
                token = self._advance()
                if token.kind == TokenKind.LPAREN:
                    depth += 1
                    parts.append(token.text)
                elif token.kind == TokenKind.RPAREN:
                    depth -= 1
                    if depth >= 2:
                        parts.append(token.text)
                else:
                    parts.append(token.text)
            attributes.append("".join(parts))
        return attributes

    def _parse_array_suffix(self, base: CType) -> CType:
        dims: List[Optional[int]] = []
        while self._check(TokenKind.LBRACKET):
            self._advance()
            if self._check(TokenKind.RBRACKET):
                dims.append(None)
            else:
                expr = self._parse_expression()
                dims.append(_evaluate_constant(expr))
            self._expect(TokenKind.RBRACKET)
        if dims:
            return ArrayType(element=base, dims=tuple(dims))
        return base

    def _parse_initializer(self) -> ast.Expr:
        if self._check(TokenKind.LBRACE):
            start = self._advance().location
            elements: List[ast.Expr] = []
            while not self._check(TokenKind.RBRACE):
                elements.append(self._parse_initializer())
                if not self._match(TokenKind.COMMA):
                    break
            self._expect(TokenKind.RBRACE)
            return ast.Call(span=self._span(start), callee="__init_list__", args=elements)
        return self._parse_assignment_expression()

    def _parse_function_rest(
        self,
        name: str,
        return_type: CType,
        attributes: List[str],
        start: SourceLocation,
    ) -> ast.FunctionDecl:
        self._expect(TokenKind.LPAREN)
        parameters: List[ast.Parameter] = []
        if not self._check(TokenKind.RPAREN):
            if self._peek().is_keyword("void") and self._peek(1).kind == TokenKind.RPAREN:
                self._advance()
            else:
                while True:
                    parameters.append(self._parse_parameter())
                    if not self._match(TokenKind.COMMA):
                        break
        self._expect(TokenKind.RPAREN)
        trailing = self._parse_attributes()
        attributes = attributes + trailing
        if self._match(TokenKind.SEMICOLON):
            return ast.FunctionDecl(
                span=self._span(start),
                name=name,
                return_type=return_type,
                parameters=parameters,
                body=None,
                attributes=attributes,
            )
        body = self._parse_compound_statement()
        return ast.FunctionDecl(
            span=self._span(start),
            name=name,
            return_type=return_type,
            parameters=parameters,
            body=body,
            attributes=attributes,
        )

    def _parse_parameter(self) -> ast.Parameter:
        start = self._peek().location
        base_type, _ = self._parse_declaration_specifiers()
        if base_type is None:
            raise ParseError("expected parameter type", self._peek().location)
        name = ""
        if self._check(TokenKind.IDENTIFIER):
            name = self._advance().text
        ctype = self._parse_array_suffix(base_type)
        return ast.Parameter(span=self._span(start), name=name, ctype=ctype)

    # -- statements ----------------------------------------------------------

    def _parse_compound_statement(self) -> ast.CompoundStmt:
        start = self._expect(TokenKind.LBRACE).location
        statements: List[ast.Stmt] = []
        pending_pragma: Optional[LoopPragma] = None
        while not self._check(TokenKind.RBRACE) and not self._check(TokenKind.EOF):
            statement = self._parse_statement()
            if isinstance(statement, ast.PragmaStmt):
                if statement.pragma is not None:
                    pending_pragma = (
                        statement.pragma
                        if pending_pragma is None
                        else pending_pragma.merged_with(statement.pragma)
                    )
                continue
            if pending_pragma is not None and isinstance(
                statement, (ast.ForStmt, ast.WhileStmt)
            ):
                existing = statement.pragma
                statement.pragma = (
                    pending_pragma
                    if existing is None
                    else existing.merged_with(pending_pragma)
                )
            pending_pragma = None
            statements.append(statement)
        self._expect(TokenKind.RBRACE)
        return ast.CompoundStmt(span=self._span(start), statements=statements)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind == TokenKind.PRAGMA:
            return self._parse_pragma_statement()
        if token.kind == TokenKind.LBRACE:
            return self._parse_compound_statement()
        if token.kind == TokenKind.SEMICOLON:
            self._advance()
            return ast.CompoundStmt(statements=[])
        if token.kind == TokenKind.KEYWORD:
            if token.text == "for":
                return self._parse_for()
            if token.text == "while":
                return self._parse_while()
            if token.text == "do":
                return self._parse_do_while()
            if token.text == "if":
                return self._parse_if()
            if token.text == "return":
                return self._parse_return()
            if token.text == "break":
                self._advance()
                self._expect(TokenKind.SEMICOLON)
                return ast.BreakStmt()
            if token.text == "continue":
                self._advance()
                self._expect(TokenKind.SEMICOLON)
                return ast.ContinueStmt()
            if token.text in _TYPE_KEYWORDS:
                return self._parse_declaration_statement()
        expr = self._parse_expression()
        self._expect(TokenKind.SEMICOLON)
        return ast.ExprStmt(expr=expr)

    def _parse_pragma_statement(self) -> ast.PragmaStmt:
        token = self._advance()
        pragma = parse_pragma_text(f"#pragma {token.text}")
        return ast.PragmaStmt(pragma=pragma, raw_text=token.text)

    def _parse_declaration_statement(self) -> ast.DeclStmt:
        start = self._peek().location
        base_type, _ = self._parse_declaration_specifiers()
        if base_type is None:
            raise ParseError("expected declaration", self._peek().location)
        declarations: List[ast.VarDecl] = []
        while True:
            attributes = self._parse_attributes()
            name = self._expect(TokenKind.IDENTIFIER).text
            ctype = self._parse_array_suffix(base_type)
            attributes += self._parse_attributes()
            init: Optional[ast.Expr] = None
            if self._match(TokenKind.ASSIGN):
                init = self._parse_initializer()
            declarations.append(
                ast.VarDecl(
                    span=self._span(start),
                    name=name,
                    ctype=ctype,
                    init=init,
                    attributes=attributes,
                )
            )
            if not self._match(TokenKind.COMMA):
                break
        self._expect(TokenKind.SEMICOLON)
        return ast.DeclStmt(span=self._span(start), declarations=declarations)

    def _parse_for(self) -> ast.ForStmt:
        start = self._expect(TokenKind.KEYWORD, "for").location
        self._expect(TokenKind.LPAREN)
        init: Optional[ast.Stmt] = None
        if not self._check(TokenKind.SEMICOLON):
            if self._at_type_start():
                init = self._parse_declaration_statement()
            else:
                expr = self._parse_expression()
                self._expect(TokenKind.SEMICOLON)
                init = ast.ExprStmt(expr=expr)
        else:
            self._advance()
        condition: Optional[ast.Expr] = None
        if not self._check(TokenKind.SEMICOLON):
            condition = self._parse_expression()
        self._expect(TokenKind.SEMICOLON)
        increment: Optional[ast.Expr] = None
        if not self._check(TokenKind.RPAREN):
            increment = self._parse_expression()
        self._expect(TokenKind.RPAREN)
        body = self._parse_loop_body()
        return ast.ForStmt(
            span=self._span(start),
            init=init,
            condition=condition,
            increment=increment,
            body=body,
        )

    def _parse_loop_body(self) -> ast.Stmt:
        """Parse a loop body, attaching pragmas that appear directly inside a
        brace-less body position (the dataset puts pragmas before inner loops).

        Brace-less bodies are normalised to a single-statement
        :class:`~repro.frontend.ast.CompoundStmt` so downstream passes (sema,
        lowering) can rely on ``loop.body.statements`` always existing."""
        if self._check(TokenKind.PRAGMA):
            pragma_stmt = self._parse_pragma_statement()
            body = self._parse_statement()
            if isinstance(body, (ast.ForStmt, ast.WhileStmt)) and pragma_stmt.pragma:
                body.pragma = (
                    pragma_stmt.pragma
                    if body.pragma is None
                    else body.pragma.merged_with(pragma_stmt.pragma)
                )
            return self._as_block(body)
        return self._as_block(self._parse_statement())

    @staticmethod
    def _as_block(body: ast.Stmt) -> ast.CompoundStmt:
        if isinstance(body, ast.CompoundStmt):
            return body
        return ast.CompoundStmt(span=body.span, statements=[body])

    def _parse_while(self) -> ast.WhileStmt:
        start = self._expect(TokenKind.KEYWORD, "while").location
        self._expect(TokenKind.LPAREN)
        condition = self._parse_expression()
        self._expect(TokenKind.RPAREN)
        body = self._parse_loop_body()
        return ast.WhileStmt(span=self._span(start), condition=condition, body=body)

    def _parse_do_while(self) -> ast.DoWhileStmt:
        start = self._expect(TokenKind.KEYWORD, "do").location
        body = self._parse_statement()
        self._expect(TokenKind.KEYWORD, "while")
        self._expect(TokenKind.LPAREN)
        condition = self._parse_expression()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMICOLON)
        return ast.DoWhileStmt(span=self._span(start), body=body, condition=condition)

    def _parse_if(self) -> ast.IfStmt:
        start = self._expect(TokenKind.KEYWORD, "if").location
        self._expect(TokenKind.LPAREN)
        condition = self._parse_expression()
        self._expect(TokenKind.RPAREN)
        then_branch = self._parse_statement()
        else_branch: Optional[ast.Stmt] = None
        if self._peek().is_keyword("else"):
            self._advance()
            else_branch = self._parse_statement()
        return ast.IfStmt(
            span=self._span(start),
            condition=condition,
            then_branch=then_branch,
            else_branch=else_branch,
        )

    def _parse_return(self) -> ast.ReturnStmt:
        start = self._expect(TokenKind.KEYWORD, "return").location
        value: Optional[ast.Expr] = None
        if not self._check(TokenKind.SEMICOLON):
            value = self._parse_expression()
        self._expect(TokenKind.SEMICOLON)
        return ast.ReturnStmt(span=self._span(start), value=value)

    # -- expressions ----------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment_expression()
        while self._check(TokenKind.COMMA):
            self._advance()
            right = self._parse_assignment_expression()
            expr = ast.BinaryOp(op=",", left=expr, right=right)
        return expr

    def _parse_assignment_expression(self) -> ast.Expr:
        left = self._parse_ternary()
        kind = self._peek().kind
        if kind in _ASSIGNMENT_KINDS:
            op = _ASSIGNMENT_KINDS[kind]
            self._advance()
            value = self._parse_assignment_expression()
            return ast.Assignment(op=op, target=left, value=value)
        return left

    def _parse_ternary(self) -> ast.Expr:
        condition = self._parse_binary(0)
        if self._match(TokenKind.QUESTION):
            then_value = self._parse_assignment_expression()
            self._expect(TokenKind.COLON)
            else_value = self._parse_assignment_expression()
            return ast.TernaryOp(
                condition=condition, then_value=then_value, else_value=else_value
            )
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if (
                precedence is None
                or precedence < min_precedence
                or token.kind
                in (TokenKind.IDENTIFIER, TokenKind.KEYWORD, TokenKind.INT_LITERAL)
            ):
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.BinaryOp(op=token.text, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind in (TokenKind.PLUS, TokenKind.MINUS, TokenKind.BANG,
                          TokenKind.TILDE, TokenKind.STAR, TokenKind.AMP):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(op=token.text, operand=operand)
        if token.kind in (TokenKind.INCREMENT, TokenKind.DECREMENT):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(op=token.text, operand=operand, is_postfix=False)
        if token.is_keyword("sizeof"):
            self._advance()
            if self._check(TokenKind.LPAREN) and self._at_type_start(1):
                self._advance()
                ctype, _ = self._parse_declaration_specifiers()
                ctype = self._parse_array_suffix(ctype or INT)
                self._expect(TokenKind.RPAREN)
                return ast.SizeOf(target_type=ctype)
            operand = self._parse_unary()
            return ast.SizeOf(operand=operand)
        if token.kind == TokenKind.LPAREN and self._at_type_start(1):
            # Cast expression: "(" type ")" unary
            self._advance()
            ctype, _ = self._parse_declaration_specifiers()
            self._expect(TokenKind.RPAREN)
            operand = self._parse_unary()
            return ast.Cast(target_type=ctype, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind == TokenKind.LBRACKET:
                self._advance()
                index = self._parse_expression()
                self._expect(TokenKind.RBRACKET)
                expr = ast.ArraySubscript(base=expr, index=index)
            elif token.kind == TokenKind.LPAREN and isinstance(expr, ast.Identifier):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check(TokenKind.RPAREN):
                    while True:
                        args.append(self._parse_assignment_expression())
                        if not self._match(TokenKind.COMMA):
                            break
                self._expect(TokenKind.RPAREN)
                expr = ast.Call(callee=expr.name, args=args)
            elif token.kind in (TokenKind.INCREMENT, TokenKind.DECREMENT):
                self._advance()
                expr = ast.UnaryOp(op=token.text, operand=expr, is_postfix=True)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(value=int(token.value))
        if token.kind == TokenKind.FLOAT_LITERAL:
            self._advance()
            return ast.FloatLiteral(value=float(token.value))
        if token.kind == TokenKind.CHAR_LITERAL:
            self._advance()
            return ast.CharLiteral(value=int(token.value))
        if token.kind == TokenKind.STRING_LITERAL:
            self._advance()
            return ast.StringLiteral(value=str(token.value))
        if token.kind == TokenKind.IDENTIFIER:
            self._advance()
            return ast.Identifier(name=token.text)
        if token.kind == TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenKind.RPAREN)
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.location)


def _evaluate_constant(expr: ast.Expr) -> Optional[int]:
    """Best-effort constant folding of array dimension expressions."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _evaluate_constant(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, ast.BinaryOp):
        left = _evaluate_constant(expr.left)
        right = _evaluate_constant(expr.right)
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left // right if right != 0 else None
            if expr.op == "%":
                return left % right if right != 0 else None
            if expr.op == "<<":
                return left << right
            if expr.op == ">>":
                return left >> right
        except (ValueError, OverflowError):
            return None
    return None


def parse_source(
    source: str,
    filename: str = "<source>",
    defines: Optional[Dict[str, str]] = None,
) -> ast.TranslationUnit:
    """Preprocess, tokenize and parse C source text into an AST."""
    text, _ = preprocess(source, filename, defines)
    tokens = tokenize(text, filename)
    return Parser(tokens, filename).parse_translation_unit()
