"""Hand-written lexer for the C subset."""

from __future__ import annotations

from typing import List, Optional

from repro.frontend.errors import LexError, SourceLocation
from repro.frontend.preprocessor import PRAGMA_MARKER
from repro.frontend.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)


class Lexer:
    """Converts preprocessed source text into a list of :class:`Token`.

    The lexer expects comments to already be stripped and pragmas to be
    rewritten as ``__REPRO_PRAGMA__("...");`` by the preprocessor; it turns
    those markers back into first-class ``PRAGMA`` tokens so the parser can
    attach them to the following loop.
    """

    def __init__(self, source: str, filename: str = "<source>"):
        self.source = source
        self.filename = filename
        self.position = 0
        self.line = 1
        self.column = 1

    # -- public API ---------------------------------------------------------

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind == TokenKind.EOF:
                return tokens

    def next_token(self) -> Token:
        self._skip_whitespace()
        if self.position >= len(self.source):
            return Token(TokenKind.EOF, "", self._location())
        location = self._location()
        ch = self._peek()

        if ch.isalpha() or ch == "_":
            return self._lex_identifier(location)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(location)
        if ch == "'":
            return self._lex_char(location)
        if ch == '"':
            return self._lex_string(location)
        return self._lex_operator(location)

    # -- character helpers --------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.position : self.position + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return text

    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _peek_in(self, chars: str, offset: int = 0) -> bool:
        # Guard against EOF: ``"" in chars`` is always True, so a bare
        # membership test on ``_peek()`` spins forever at end of input.
        ch = self._peek(offset)
        return bool(ch) and ch in chars

    def _skip_whitespace(self) -> None:
        while self.position < len(self.source) and self._peek() in " \t\r\n\f\v":
            self._advance()

    # -- token producers ----------------------------------------------------

    def _lex_identifier(self, location: SourceLocation) -> Token:
        start = self.position
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.position]
        if text == PRAGMA_MARKER:
            return self._lex_pragma_marker(location)
        if text in KEYWORDS:
            return Token(TokenKind.KEYWORD, text, location, text)
        return Token(TokenKind.IDENTIFIER, text, location, text)

    def _lex_pragma_marker(self, location: SourceLocation) -> Token:
        # Expect: ("pragma body");  — produced by the preprocessor.
        self._skip_whitespace()
        if self._peek() != "(":
            raise LexError("malformed pragma marker", location)
        self._advance()
        self._skip_whitespace()
        if self._peek() != '"':
            raise LexError("malformed pragma marker", location)
        self._advance()
        start = self.position
        while self._peek() not in ('"', ""):
            self._advance()
        body = self.source[start : self.position]
        if self._peek() != '"':
            raise LexError("unterminated pragma marker", location)
        self._advance()
        self._skip_whitespace()
        if self._peek() == ")":
            self._advance()
        self._skip_whitespace()
        if self._peek() == ";":
            self._advance()
        return Token(TokenKind.PRAGMA, body, location, body)

    def _lex_number(self, location: SourceLocation) -> Token:
        start = self.position
        is_float = False
        if self._peek() == "0" and self._peek_in("xX", 1):
            self._advance(2)
            digits_start = self.position
            while self._peek_in("0123456789abcdefABCDEF"):
                self._advance()
            if self.position == digits_start:
                raise LexError("hexadecimal literal requires digits", location)
            text = self.source[start : self.position]
            self._skip_integer_suffix()
            return Token(TokenKind.INT_LITERAL, text, location, int(text, 16))
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek_in("eE") and (
            self._peek(1).isdigit()
            or (self._peek_in("+-", 1) and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek_in("+-"):
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.position]
        if is_float:
            if self._peek_in("fFlL"):
                self._advance()
            return Token(TokenKind.FLOAT_LITERAL, text, location, float(text))
        self._skip_integer_suffix()
        return Token(TokenKind.INT_LITERAL, text, location, int(text, 10))

    def _skip_integer_suffix(self) -> None:
        while self._peek_in("uUlL"):
            self._advance()

    def _lex_char(self, location: SourceLocation) -> Token:
        self._advance()  # opening quote
        value: int
        if self._peek() == "\\":
            self._advance()
            escape = self._advance()
            escapes = {"n": 10, "t": 9, "0": 0, "r": 13, "\\": 92, "'": 39, '"': 34}
            value = escapes.get(escape, ord(escape))
        else:
            value = ord(self._advance())
        if self._peek() != "'":
            raise LexError("unterminated character literal", location)
        self._advance()
        return Token(TokenKind.CHAR_LITERAL, f"'{chr(value)}'", location, value)

    def _lex_string(self, location: SourceLocation) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while self._peek() not in ('"', ""):
            if self._peek() == "\\":
                self._advance()
                escape = self._advance()
                escapes = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"'}
                chars.append(escapes.get(escape, escape))
            else:
                chars.append(self._advance())
        if self._peek() != '"':
            raise LexError("unterminated string literal", location)
        self._advance()
        text = "".join(chars)
        return Token(TokenKind.STRING_LITERAL, text, location, text)

    def _lex_operator(self, location: SourceLocation) -> Token:
        for text, kind in MULTI_CHAR_OPERATORS:
            if self.source.startswith(text, self.position):
                self._advance(len(text))
                return Token(kind, text, location)
        ch = self._peek()
        kind: Optional[TokenKind] = SINGLE_CHAR_OPERATORS.get(ch)
        if kind is None:
            raise LexError(f"unexpected character {ch!r}", location)
        self._advance()
        return Token(kind, ch, location)


def tokenize(source: str, filename: str = "<source>") -> List[Token]:
    """Tokenize preprocessed source text."""
    return Lexer(source, filename).tokenize()
