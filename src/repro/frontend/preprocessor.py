"""A minimal C preprocessor.

The loop kernels in the dataset only use a handful of preprocessor features:
object-like ``#define`` macros for loop bounds (``#define N 1024``), comments,
``#include`` of standard headers (which we ignore), and ``#pragma clang
loop`` hints.  The preprocessor strips comments, expands object-like macros,
removes includes, and replaces pragma lines with a marker token the lexer
turns into a ``PRAGMA`` token so that pragmas survive to the parser attached
to the right loop.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.frontend.errors import CompileError, SourceLocation

#: Sentinel embedded into preprocessed text so the lexer can recover pragmas.
PRAGMA_MARKER = "__REPRO_PRAGMA__"

# A ``(`` immediately after the macro name (no whitespace) marks a
# function-like macro; ``#define X (1+2)`` stays object-like.
_DEFINE_RE = re.compile(r"^\s*#\s*define\s+([A-Za-z_][A-Za-z0-9_]*)(\()?\s*(.*)$")
_UNDEF_RE = re.compile(r"^\s*#\s*undef\s+([A-Za-z_][A-Za-z0-9_]*)\s*$")
_INCLUDE_RE = re.compile(r"^\s*#\s*include\b")
_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\b(.*)$")
# Pragmas that follow other code on the same line (e.g. ``{ #pragma ...``);
# the directive runs to end of line.
_MIDLINE_PRAGMA_RE = re.compile(r"#\s*pragma\b(.*)$")
_IFDEF_RE = re.compile(r"^\s*#\s*(ifdef|ifndef|if|else|elif|endif)\b")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass
class MacroDefinition:
    """An object-like macro: a name bound to replacement text."""

    name: str
    replacement: str
    location: SourceLocation


@dataclass
class Preprocessor:
    """Expands macros and strips comments/includes from C source text.

    Function-like macros and conditional compilation are not needed by the
    kernel dataset; ``#if``/``#ifdef`` blocks are kept unconditionally (the
    kernels never rely on excluding code) and a warning is recorded.
    """

    predefined: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.macros: Dict[str, MacroDefinition] = {}
        self.warnings: List[str] = []
        for name, replacement in self.predefined.items():
            self.macros[name] = MacroDefinition(
                name, str(replacement), SourceLocation(0, 0, "<predefined>")
            )

    def process(self, source: str, filename: str = "<source>") -> str:
        """Return preprocessed source with the same number of lines."""
        without_comments = strip_comments(source)
        output_lines: List[str] = []
        for line_number, line in enumerate(without_comments.split("\n"), start=1):
            location = SourceLocation(line_number, 1, filename)
            output_lines.append(self._process_line(line, location))
        return "\n".join(output_lines)

    def _process_line(self, line: str, location: SourceLocation) -> str:
        define = _DEFINE_RE.match(line)
        if define is not None:
            name = define.group(1)
            if define.group(2) is not None:
                self.warnings.append(
                    f"{location}: function-like macro {name!r} ignored"
                )
                return ""
            replacement = define.group(3).strip()
            self.macros[name] = MacroDefinition(name, replacement, location)
            return ""
        undef = _UNDEF_RE.match(line)
        if undef is not None:
            self.macros.pop(undef.group(1), None)
            return ""
        if _INCLUDE_RE.match(line):
            return ""
        pragma = _PRAGMA_RE.match(line)
        if pragma is not None:
            body = self._expand(pragma.group(1).strip())
            return f'{PRAGMA_MARKER}("{body}");'
        midline = _MIDLINE_PRAGMA_RE.search(line)
        if midline is not None and _outside_literal(line[: midline.start()]):
            prefix = self._expand(line[: midline.start()])
            body = self._expand(midline.group(1).strip())
            return f'{prefix}{PRAGMA_MARKER}("{body}");'
        if _IFDEF_RE.match(line):
            self.warnings.append(
                f"{location}: conditional compilation directive kept as-is"
            )
            return ""
        return self._expand(line)

    def _expand(self, line: str, depth: int = 0) -> str:
        """Expand object-like macros in ``line`` (recursively, bounded)."""
        if depth > 16:
            raise CompileError("macro expansion too deep (recursive #define?)")
        if not self.macros:
            return line

        def replace(match: "re.Match[str]") -> str:
            name = match.group(0)
            macro = self.macros.get(name)
            return macro.replacement if macro is not None else name

        expanded = _IDENT_RE.sub(replace, line)
        if expanded != line:
            return self._expand(expanded, depth + 1)
        return expanded


def _outside_literal(prefix: str) -> bool:
    """True if a position preceded by ``prefix`` is outside string/char
    literals (tracks escapes, unlike a bare quote-parity count)."""
    in_literal: Optional[str] = None
    index = 0
    while index < len(prefix):
        ch = prefix[index]
        if in_literal is not None:
            if ch == "\\":
                index += 2
                continue
            if ch == in_literal:
                in_literal = None
        elif ch in "\"'":
            in_literal = ch
        index += 1
    return in_literal is None


def strip_comments(source: str) -> str:
    """Remove ``//`` and ``/* */`` comments, preserving line structure."""
    result: List[str] = []
    i = 0
    length = len(source)
    in_block = False
    in_line = False
    in_string: Optional[str] = None
    while i < length:
        ch = source[i]
        nxt = source[i + 1] if i + 1 < length else ""
        if in_line:
            if ch == "\n":
                in_line = False
                result.append(ch)
            i += 1
            continue
        if in_block:
            if ch == "*" and nxt == "/":
                in_block = False
                i += 2
                continue
            if ch == "\n":
                result.append(ch)
            i += 1
            continue
        if in_string is not None:
            result.append(ch)
            if ch == "\\" and nxt:
                result.append(nxt)
                i += 2
                continue
            if ch == in_string:
                in_string = None
            i += 1
            continue
        if ch in "\"'":
            in_string = ch
            result.append(ch)
            i += 1
            continue
        if ch == "/" and nxt == "/":
            in_line = True
            i += 2
            continue
        if ch == "/" and nxt == "*":
            in_block = True
            i += 2
            continue
        result.append(ch)
        i += 1
    return "".join(result)


def preprocess(
    source: str,
    filename: str = "<source>",
    defines: Optional[Dict[str, str]] = None,
) -> Tuple[str, Preprocessor]:
    """Convenience wrapper: preprocess ``source`` and return (text, engine)."""
    engine = Preprocessor(predefined=dict(defines or {}))
    return engine.process(source, filename), engine
