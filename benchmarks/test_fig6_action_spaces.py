"""Figure 6: reward mean / loss for the three action-space definitions.

Paper: the discrete action space (two integer indices into the VF/IF menus)
performs best; the single- and double-valued continuous encodings converge to
lower rewards.  Expected shape: the discrete policy's final/best reward mean
is at least as good as both continuous variants.
"""

from repro.evaluation.figures import figure6_action_spaces


def test_fig6_action_space_definitions(benchmark):
    result = benchmark.pedantic(
        figure6_action_spaces,
        kwargs=dict(total_steps=900, train_count=50),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format_table("Figure 6 (action-space definitions)").render())

    finals = {
        experiment.parameters["policy"]: experiment.history.best_reward_mean
        for experiment in result.experiments
    }
    assert set(finals) == {"discrete", "continuous1", "continuous2"}
    # Discrete should not lose to either continuous encoding (allow a small
    # tolerance for run-to-run noise at this reduced step budget).
    assert finals["discrete"] >= finals["continuous1"] - 0.05
    assert finals["discrete"] >= finals["continuous2"] - 0.05

    benchmark.extra_info["best_reward_by_space"] = {
        name: round(value, 3) for name, value in finals.items()
    }
