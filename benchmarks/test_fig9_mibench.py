"""Figure 9: transfer to MiBench-like embedded programs.

Paper: loops are a minor portion of MiBench and several programs cannot be
vectorized at all; deep RL still beats both Polly and the baseline on every
benchmark, with a modest 1.1x average improvement.  Expected shape: RL >=
baseline on average with a small margin (well below the Figure 7 gains), and
RL >= Polly.
"""

from repro.datasets.mibench import mibench_suite
from repro.evaluation.comparison import compare_methods
from repro.evaluation.report import format_speedup_table


def test_fig9_mibench_transfer(benchmark, trained_agents):
    def run():
        return compare_methods(
            list(mibench_suite()),
            trained_agents,
            include_polly=True,
            include_supervised=False,
        )

    comparison = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_speedup_table(
            comparison.speedups,
            comparison.methods,
            title="Figure 9: MiBench, normalised to the baseline",
        ).render()
    )
    averages = {method: comparison.average(method) for method in comparison.methods}
    print("averages:", {k: round(v, 2) for k, v in averages.items()})

    # Modest average gain (the loops are a minor portion of these programs).
    assert averages["rl"] > 1.0
    # RL at least matches Polly here (Polly has little to tile).
    assert averages["rl"] >= averages["polly"] - 1e-9
    # The gains are much smaller than on the loop-dominated Figure 7 suite.
    assert averages["brute_force"] < 2.5

    benchmark.extra_info["average_speedups"] = {
        method: round(value, 3) for method, value in averages.items()
    }
