"""Figure 5: reward mean / training loss for different hyperparameters.

Paper: sweeps learning rate {5e-5, 5e-4, 5e-3}, FCNN width {32x32, 64x64,
128x128} and batch size {500, 1000, 4000}; the framework is robust to these,
the largest learning rate never reaches the best reward, and smaller batches
converge with fewer samples.  The sweep here keeps the same axes at a reduced
step budget.
"""

from repro.evaluation.figures import figure5_hyperparameter_sweep


def test_fig5_hyperparameter_sweep(benchmark):
    results = benchmark.pedantic(
        figure5_hyperparameter_sweep,
        kwargs=dict(total_steps=800, train_count=50, batch_sizes=(100, 200, 400)),
        iterations=1,
        rounds=1,
    )
    print()
    for sweep_name, sweep in results.items():
        print(sweep.format_table(f"Figure 5 ({sweep_name})").render())
        print()

    # Every configuration produced a full curve.
    for sweep in results.values():
        for experiment in sweep.experiments:
            assert experiment.history.iterations
            assert len(experiment.history.reward_curve()) >= 2

    # Training moves the reward mean upward for the mid/low learning rates.
    lr_sweep = results["learning_rate"]
    finals = lr_sweep.final_rewards()
    by_lr = {e.parameters["learning_rate"]: e.history for e in lr_sweep.experiments}
    for rate, history in by_lr.items():
        if rate <= 5e-4:
            assert history.best_reward_mean >= history.reward_curve()[0]

    benchmark.extra_info["final_reward_by_lr"] = {
        str(k): round(v, 3) for k, v in finals.items()
    }
    benchmark.extra_info["best_architecture"] = results[
        "fcnn_architecture"
    ].best_configuration()
