"""Reward-cache benchmark: warm lookups must crush cold compilation.

The paper's training loop is only tractable because rewards for already-seen
``(program, action)`` pairs are cached (§3.4).  This bench measures that
subsystem directly on the PolyBench suite: a cold pass evaluates the full
brute-force (VF, IF) grid through a fresh pipeline, then a warm pass replays
the identical requests against the populated :class:`RewardCache`.
"""

from __future__ import annotations

import time

from repro.cache import EvaluationBatcher, RewardCache
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.polybench import polybench_suite
from repro.evaluation.report import format_cache_stats_table
from repro.rl.spaces import DEFAULT_IF_VALUES, DEFAULT_VF_VALUES

#: The cold path must be at least this many times slower than warm lookups.
MIN_SPEEDUP = 5.0


def _grid_requests(kernels):
    requests = []
    for kernel in kernels:
        try:
            loop_count = kernel.innermost_loop_count()
        except Exception:
            continue
        for loop_index in range(loop_count):
            for vf in DEFAULT_VF_VALUES:
                for interleave in DEFAULT_IF_VALUES:
                    requests.append((kernel, loop_index, vf, interleave))
    return requests


def _run_pass(pipeline, cache, requests):
    batcher = EvaluationBatcher(pipeline, cache)
    for kernel, loop_index, vf, interleave in requests:
        batcher.add(kernel, loop_index, vf, interleave)
    start = time.perf_counter()
    outcomes = batcher.flush()
    return time.perf_counter() - start, outcomes


def test_warm_cache_beats_cold_path_on_polybench():
    kernels = list(polybench_suite())
    requests = _grid_requests(kernels)
    assert len(requests) >= 100, "polybench grid should be a real workload"

    pipeline = CompileAndMeasure()
    cache = RewardCache()

    cold_seconds, cold_outcomes = _run_pass(pipeline, cache, requests)
    warm_seconds, warm_outcomes = _run_pass(pipeline, cache, requests)

    # The warm pass answers every request from the cache with identical
    # measurements, and the cold pass compiled each unique pair exactly once.
    assert all(outcome.was_cached for outcome in warm_outcomes)
    assert not any(outcome.was_cached for outcome in cold_outcomes)
    assert cache.stats.misses == len(requests)
    assert cache.stats.hits == len(requests)
    for cold, warm in zip(cold_outcomes, warm_outcomes):
        assert warm.measurement.cycles == cold.measurement.cycles

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    print()
    print(format_cache_stats_table(cache.stats, title="polybench grid sweep").render())
    print(
        f"cold: {cold_seconds * 1e3:.1f} ms, warm: {warm_seconds * 1e3:.1f} ms, "
        f"speedup: {speedup:.0f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm cache pass only {speedup:.1f}x faster than cold "
        f"({cold_seconds:.3f}s vs {warm_seconds:.3f}s)"
    )


def test_batcher_deduplicates_repeated_requests():
    kernels = list(polybench_suite())[:2]
    pipeline = CompileAndMeasure()
    cache = RewardCache()
    batcher = EvaluationBatcher(pipeline, cache)
    repeats = 10
    for _ in range(repeats):
        for kernel in kernels:
            batcher.add(kernel, 0, 8, 2)
    outcomes = batcher.flush()
    assert len(outcomes) == repeats * len(kernels)
    # One compile per unique (kernel, loop, VF, IF); the rest were folded.
    assert cache.stats.misses == len(kernels)
    assert cache.stats.batch_deduplicated == (repeats - 1) * len(kernels)
    assert len(cache) == len(kernels)


def test_identical_source_shares_cache_entries():
    kernels = list(polybench_suite())
    kernel = kernels[0]
    clone = kernel.with_source(kernel.source)
    clone.name = "clone_of_" + kernel.name
    pipeline = CompileAndMeasure()
    cache = RewardCache()
    cache.measure(pipeline, kernel, 0, 4, 2)
    _, was_hit = cache.measure(pipeline, clone, 0, 4, 2)
    # Content-keyed: a renamed kernel with byte-identical source hits.
    assert was_hit
