"""BENCH_hotpaths.json writer — the repo's hot-path perf trajectory.

Measures the three hot paths the batched-inference refactor targets and
appends one labelled entry to ``BENCH_hotpaths.json`` so every later PR can
show its speed delta against a recorded baseline instead of anecdotes:

* **training** — wall-clock of one fixed end-to-end ``NeuroVectorizer.train``
  run (embedding pretrain + PPO) over a seeded synthetic kernel set,
* **inference** — decision sites per second through the policy, serial
  (one ``act`` call per site) versus batched (one ``act_batch`` call over
  all pending sites); the batched column is ``null`` on code that predates
  ``act_batch``,
* **frontend** — wall-clock of a full agent-comparison run with cold
  process state versus a repeat with *fresh* pipeline/reward caches, so any
  gap is exactly what the process-wide frontend memo saves,
* **update** (schema v2) — the PPO update phase profiled fused-kernel vs
  autodiff-graph with the gather/evaluate/backward/optimizer wall-clock
  split (delegated to :mod:`benchmarks.profile_update`); entries written
  by v1 code predate the section and simply lack the key.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/hotpaths.py --label my-change

``--tiny`` shrinks the workload for CI smoke runs, ``--check`` validates
the written file's schema and fails if batched inference ever regresses
below the serial path or a fused update entry diverged from the graph
path.  The workload of every entry is recorded inside the entry, so
entries of different sizes never get compared apples-to-oranges:
``--check`` and readers should compare entries with equal ``workload``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

SCHEMA = "bench-hotpaths/v2"

#: Older trajectory files this writer still reads (their entries are kept
#: verbatim; the file's schema tag is upgraded on the next append).
_COMPATIBLE_SCHEMAS = ("bench-hotpaths/v1", SCHEMA)

#: Fields every entry must carry (``--check`` enforces these).  ``update``
#: is intentionally absent: v1-era entries predate it.
_ENTRY_KEYS = ("label", "workload", "training", "inference", "frontend")


def _workload(tiny: bool) -> Dict[str, object]:
    if tiny:
        return {
            "tiny": True,
            "kernels": 4,
            "train_steps": 40,
            "batch_size": 20,
            "inference_sites": 128,
            "inference_repeats": 3,
            "seed": 0,
        }
    return {
        "tiny": False,
        "kernels": 24,
        "train_steps": 1200,
        "batch_size": 300,
        "inference_sites": 2048,
        "inference_repeats": 5,
        "seed": 0,
    }


def _make_kernels(workload: Dict[str, object]):
    from repro.datasets.synthetic import (
        SyntheticDatasetConfig,
        generate_synthetic_dataset,
    )

    config = SyntheticDatasetConfig(
        count=int(workload["kernels"]), seed=int(workload["seed"])
    )
    return list(generate_synthetic_dataset(config))


def bench_training(workload: Dict[str, object]) -> Dict[str, float]:
    """Wall-clock one fixed end-to-end training run."""
    from repro.core.framework import NeuroVectorizer, TrainingConfig

    kernels = _make_kernels(workload)
    config = TrainingConfig(
        rl_total_steps=int(workload["train_steps"]),
        rl_batch_size=int(workload["batch_size"]),
        pretrain_epochs=1,
        seed=int(workload["seed"]),
    )
    start = time.perf_counter()
    framework, _artifacts = NeuroVectorizer.train(kernels, config)
    seconds = time.perf_counter() - start
    framework.close()
    return {"wall_seconds": seconds}


def bench_inference(workload: Dict[str, object]) -> Dict[str, Optional[float]]:
    """Sites/second through the policy: serial ``act`` vs ``act_batch``."""
    from repro.rl.policy import make_policy

    sites = int(workload["inference_sites"])
    repeats = int(workload["inference_repeats"])
    rng = np.random.default_rng(int(workload["seed"]))
    observation_dim = 128
    observations = rng.standard_normal((sites, observation_dim))

    def time_best(run) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        return best

    serial_policy = make_policy("discrete", observation_dim, seed=0)
    serial_seconds = time_best(
        lambda: [serial_policy.act(observation) for observation in observations]
    )
    serial_rate = sites / serial_seconds

    batched_rate: Optional[float] = None
    batched_policy = make_policy("discrete", observation_dim, seed=0)
    act_batch = getattr(batched_policy, "act_batch", None)
    if act_batch is not None:
        batched_seconds = time_best(lambda: act_batch(observations))
        batched_rate = sites / batched_seconds
    return {
        "serial_sites_per_second": serial_rate,
        "batched_sites_per_second": batched_rate,
        "batched_over_serial": (
            batched_rate / serial_rate if batched_rate is not None else None
        ),
    }


def bench_frontend(workload: Dict[str, object]) -> Dict[str, object]:
    """Comparison-run wall-clock, cold process vs warm process-wide memos.

    Both runs build *fresh* pipelines and reward caches; only state that
    outlives them (the process-wide frontend memo, once it exists) can make
    the second run faster.
    """
    from repro.cache.reward_cache import RewardCache
    from repro.core.framework import compare_agents
    from repro.core.pipeline import CompileAndMeasure

    frontend_stats = None
    try:
        from repro.frontend.cache import frontend_cache

        frontend_cache().clear()
    except ImportError:  # pre-refactor code: no process-wide memo
        pass

    kernels = _make_kernels(workload)

    def run_once() -> float:
        start = time.perf_counter()
        compare_agents(
            kernels,
            pipeline=CompileAndMeasure(),
            reward_cache=RewardCache(),
            seed=int(workload["seed"]),
        )
        return time.perf_counter() - start

    cold = run_once()
    warm = run_once()
    try:
        from repro.frontend.cache import frontend_cache

        frontend_stats = frontend_cache().stats.as_dict()
    except ImportError:
        pass
    return {
        "cold_comparison_seconds": cold,
        "warm_comparison_seconds": warm,
        "warm_speedup": cold / warm if warm > 0 else float("inf"),
        "frontend_cache": frontend_stats,
    }


def bench_update(workload: Dict[str, object]) -> Dict[str, object]:
    """PPO update phase: fused kernel vs autodiff graph, phase-split.

    Delegates to :func:`benchmarks.profile_update.profile_update` so the
    trajectory entry and the standalone profiler always measure the same
    committed workload.  Internal bookkeeping keys are stripped.
    """
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        from profile_update import _workload as update_workload
        from profile_update import profile_update
    finally:
        sys.path.pop(0)

    result = profile_update(update_workload(bool(workload["tiny"])))
    return {
        "workload": result["workload"],
        "graph": result["graph"],
        "fused": result["fused"],
        "fused_speedup": result["fused_speedup"],
        "identical": result["identical"],
    }


def run_benchmark(label: str, tiny: bool = False) -> Dict[str, object]:
    """Run all four hot-path measurements and return one trajectory entry."""
    workload = _workload(tiny)
    entry: Dict[str, object] = {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": workload,
    }
    entry["training"] = bench_training(workload)
    entry["inference"] = bench_inference(workload)
    entry["frontend"] = bench_frontend(workload)
    entry["update"] = bench_update(workload)
    return entry


# ---------------------------------------------------------------------------
# Trajectory file handling
# ---------------------------------------------------------------------------


def load_trajectory(path: Path) -> Dict[str, object]:
    if path.exists():
        payload = json.loads(path.read_text())
        if payload.get("schema") not in _COMPATIBLE_SCHEMAS:
            raise ValueError(
                f"{path} has schema {payload.get('schema')!r}, expected one "
                f"of {_COMPATIBLE_SCHEMAS!r}"
            )
        return payload
    return {"schema": SCHEMA, "entries": []}


def append_entry(path: Path, entry: Dict[str, object]) -> Dict[str, object]:
    payload = load_trajectory(path)
    payload["schema"] = SCHEMA  # v1 files upgrade in place; entries unchanged
    payload["entries"].append(entry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return payload


def validate(payload: Dict[str, object]) -> List[str]:
    """Schema/regression checks; returns a list of problems (empty = OK).

    v1-era entries (no ``update`` section) stay valid; entries that carry
    one must be byte-identical (``identical``) and report positive rates.
    """
    problems: List[str] = []
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}")
    entries = payload.get("entries")
    if not isinstance(entries, list) or not entries:
        return problems + ["entries must be a non-empty list"]
    for index, entry in enumerate(entries):
        for key in _ENTRY_KEYS:
            if key not in entry:
                problems.append(f"entry {index} ({entry.get('label')}) lacks {key!r}")
        inference = entry.get("inference", {})
        serial = inference.get("serial_sites_per_second")
        if not isinstance(serial, (int, float)) or serial <= 0:
            problems.append(f"entry {index}: bad serial inference rate {serial!r}")
        batched = inference.get("batched_sites_per_second")
        if batched is not None and batched < serial:
            problems.append(
                f"entry {index} ({entry.get('label')}): batched inference "
                f"({batched:.0f}/s) regressed below serial ({serial:.0f}/s)"
            )
        frontend = entry.get("frontend", {})
        for key in ("cold_comparison_seconds", "warm_comparison_seconds"):
            value = frontend.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"entry {index}: bad frontend timing {key}={value!r}")
        update = entry.get("update")
        if update is not None:
            if update.get("identical") is not True:
                problems.append(
                    f"entry {index} ({entry.get('label')}): fused update "
                    "diverged from the autodiff graph"
                )
            for variant in ("graph", "fused"):
                rate = update.get(variant, {}).get("updates_per_second")
                if not isinstance(rate, (int, float)) or rate <= 0:
                    problems.append(
                        f"entry {index}: bad update rate {variant}={rate!r}"
                    )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json",
        help="trajectory file to append to (default: repo-root BENCH_hotpaths.json)",
    )
    parser.add_argument("--label", default="unlabelled", help="entry label")
    parser.add_argument(
        "--tiny", action="store_true", help="CI-sized workload (seconds, not minutes)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the file after writing; non-zero exit on problems",
    )
    args = parser.parse_args(argv)

    entry = run_benchmark(args.label, tiny=args.tiny)
    payload = append_entry(args.output, entry)
    inference = entry["inference"]
    frontend = entry["frontend"]
    print(f"wrote {args.output} ({len(payload['entries'])} entries)")
    print(f"  training: {entry['training']['wall_seconds']:.2f}s")
    serial = inference["serial_sites_per_second"]
    print(f"  inference serial: {serial:,.0f} sites/s")
    if inference["batched_sites_per_second"] is not None:
        print(
            f"  inference batched: {inference['batched_sites_per_second']:,.0f} "
            f"sites/s ({inference['batched_over_serial']:.1f}x serial)"
        )
    print(
        f"  frontend: cold {frontend['cold_comparison_seconds']:.2f}s, "
        f"warm {frontend['warm_comparison_seconds']:.2f}s "
        f"({frontend['warm_speedup']:.2f}x)"
    )
    update = entry["update"]
    print(
        f"  update: graph {update['graph']['updates_per_second']:.1f}/s, "
        f"fused {update['fused']['updates_per_second']:.1f}/s "
        f"({update['fused_speedup']:.2f}x, identical={update['identical']})"
    )
    if args.check:
        problems = validate(payload)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
