"""PPO update-path profiler: fused kernel vs autodiff graph, phase by phase.

Runs the same seeded synthetic PPO workload through the trainer twice —
once with ``fused_update=False`` (the historical per-minibatch autodiff
graph) and once with the fused kernel auto-detected — with a
:class:`repro.profiling.PhaseTimer` attached, so every entry splits the
update wall-clock into its gather / evaluate / backward / optimizer
phases.  The two variants must finish with **byte-identical weights and
metrics**: the fused path is a pure re-expression of the graph, so any
drift is a bug, and ``--check`` fails on it.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/profile_update.py --tiny --check

``--tiny`` shrinks the workload to CI size (well under a second);
``--check`` additionally enforces the identity gate and that the fused
path has not catastrophically regressed against the graph path
(``--min-speedup``, default 0.8 to stay robust to CI timer noise — the
real measurement lives in BENCH_hotpaths.json entries on the full
workload).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np


def _workload(tiny: bool) -> Dict[str, object]:
    if tiny:
        return {
            "tiny": True,
            "batch": 96,
            "updates": 3,
            "observation_dim": 16,
            "hidden": [32, 16],
            "minibatch": 16,
            "epochs": 4,
            "tasks": 2,
            "repeats": 2,
            "seed": 0,
        }
    # Mirrors the framework's real training shape (hidden (64, 64),
    # batches of a few hundred sites, minibatch 128): graph overhead, not
    # matmul width, is the update path's actual bottleneck at this scale.
    return {
        "tiny": False,
        "batch": 384,
        "updates": 12,
        "observation_dim": 128,
        "hidden": [64, 64],
        "minibatch": 128,
        "epochs": 8,
        "tasks": 3,
        "repeats": 3,
        "seed": 0,
    }


class _NullEnv:
    """The trainer only touches the env during collection, which this
    harness skips by feeding pre-generated batches straight to update()."""

    def set_action_spaces(self, spaces) -> None:  # pragma: no cover - trivial
        pass


def _spaces(task_count: int):
    from repro.rl.spaces import DiscreteFactorSpace

    arities = [(7, 5), (4, 3, 2), (5, 2)]
    spaces = {}
    for index in range(task_count):
        menus = tuple(
            tuple(range(1, size + 1)) for size in arities[index % len(arities)]
        )
        spaces[f"task{index}"] = DiscreteFactorSpace(menus=menus)
    return spaces


def _make_batches(spaces, workload: Dict[str, object]) -> List[Tuple]:
    rng = np.random.default_rng(int(workload["seed"]) + 77)
    names = list(spaces)
    n = int(workload["batch"])
    observation_dim = int(workload["observation_dim"])
    max_dims = max(len(space.sizes) for space in spaces.values())
    batches = []
    for _ in range(int(workload["updates"])):
        observations = rng.standard_normal((n, observation_dim))
        tasks = [names[i % len(names)] for i in range(n)]
        actions = np.zeros((n, max_dims), dtype=np.float64)
        for i, task in enumerate(tasks):
            for j, size in enumerate(spaces[task].sizes):
                actions[i, j] = rng.integers(0, size)
        old_log_probs = rng.standard_normal(n) * 0.3 - 1.0
        rewards = rng.standard_normal(n)
        values = rng.standard_normal(n) * 0.5
        batches.append((observations, actions, old_log_probs, rewards, values, tasks))
    return batches


def _run_variant(fused: Optional[bool], workload: Dict[str, object]) -> Dict[str, object]:
    """One full multi-update run; returns timings plus identity evidence.

    The wall-clock is best-of-``repeats`` (each repeat rebuilds policy and
    trainer from the same seed, so every repeat does identical work); the
    phase split and the final weights come from the last repeat.
    """
    from repro.profiling import PhaseTimer
    from repro.rl.policy import make_policy
    from repro.rl.ppo import PPOConfig, PPOTrainer

    spaces = _spaces(int(workload["tasks"]))
    batches = _make_batches(spaces, workload)
    best = float("inf")
    timer = policy = metrics = None
    for _ in range(int(workload["repeats"])):
        policy = make_policy(
            "discrete",
            int(workload["observation_dim"]),
            hidden_sizes=tuple(workload["hidden"]),
            seed=int(workload["seed"]) + 3,
            spaces=spaces,
            conditioning="banks",
        )
        timer = PhaseTimer()
        trainer = PPOTrainer(
            _NullEnv(),
            policy,
            PPOConfig(
                minibatch_size=int(workload["minibatch"]),
                epochs_per_batch=int(workload["epochs"]),
                fused_update=fused,
            ),
            profiler=timer,
        )
        metrics = []
        start = time.perf_counter()
        for batch in batches:
            with timer.scope("update"):
                metrics.append(trainer.update(*batch[:5], task_names=batch[5]))
        best = min(best, time.perf_counter() - start)
    phases = {
        name: seconds
        for name, seconds in timer.as_dict().items()
        if name.startswith("update")
    }
    updates = int(workload["updates"])
    return {
        "wall_seconds": best,
        "updates_per_second": updates / best if best > 0 else float("inf"),
        "phases": phases,
        "_weights": [parameter.data.tobytes() for parameter in policy.parameters()],
        "_metrics": metrics,
    }


def profile_update(workload: Dict[str, object]) -> Dict[str, object]:
    """Profile both variants and fold in the identity verdict."""
    graph = _run_variant(False, workload)
    fused = _run_variant(None, workload)
    identical = (
        graph.pop("_weights") == fused.pop("_weights")
        and graph.pop("_metrics") == fused.pop("_metrics")
    )
    graph.pop("_metrics", None)
    fused.pop("_metrics", None)
    return {
        "workload": workload,
        "graph": graph,
        "fused": fused,
        "fused_speedup": (
            graph["wall_seconds"] / fused["wall_seconds"]
            if fused["wall_seconds"] > 0
            else float("inf")
        ),
        "identical": identical,
    }


def _print_report(result: Dict[str, object]) -> None:
    for variant in ("graph", "fused"):
        data = result[variant]
        print(
            f"{variant:>6}: {data['wall_seconds']:.3f}s "
            f"({data['updates_per_second']:.1f} updates/s)"
        )
        total = sum(
            seconds for name, seconds in data["phases"].items() if "/" in name
        )
        for name in sorted(data["phases"]):
            if "/" not in name:
                continue
            seconds = data["phases"][name]
            share = seconds / total if total else 0.0
            print(f"        {name:<20} {seconds:.4f}s ({share:5.1%})")
    print(f"fused speedup: {result['fused_speedup']:.2f}x")
    print(f"byte-identical: {result['identical']}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI-sized workload")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the variants are byte-identical and the fused "
        "path clears --min-speedup",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.8,
        help="lowest acceptable fused/graph wall-clock ratio under --check",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the result as JSON instead"
    )
    args = parser.parse_args(argv)

    result = profile_update(_workload(args.tiny))
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        _print_report(result)
    if args.check:
        problems = []
        if not result["identical"]:
            problems.append("fused update diverged from the autodiff graph")
        if result["fused_speedup"] < args.min_speedup:
            problems.append(
                f"fused speedup {result['fused_speedup']:.2f}x below the "
                f"{args.min_speedup:.2f}x floor"
            )
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
