"""Distributed-evaluation benchmark: persistent warm start + sharded identity.

Two acceptance properties of the evaluation service, measured on PolyBench:

(a) a second run against a populated on-disk reward store performs **zero**
    simulator invocations for repeated kernels — the cross-run analogue of
    the in-memory warm/cold split in ``test_reward_cache.py``;
(b) sharding evaluation across worker processes produces results
    byte-identical to the serial ``workers=0`` path.
"""

from __future__ import annotations

from repro.core.pipeline import CompileAndMeasure
from repro.datasets.polybench import polybench_suite
from repro.distributed import DiskBackedRewardCache, EvaluationService
from repro.rl.spaces import DEFAULT_IF_VALUES, DEFAULT_VF_VALUES
from repro.simulator.engine import Simulator


def _grid_requests(kernels):
    """The full brute-force (kernel, loop, VF, IF) sweep for the suite."""
    requests = []
    for kernel in kernels:
        try:
            loop_count = kernel.innermost_loop_count()
        except Exception:
            continue
        for loop_index in range(loop_count):
            for vf in DEFAULT_VF_VALUES:
                for interleave in DEFAULT_IF_VALUES:
                    requests.append((kernel, loop_index, vf, interleave))
    return requests


def _outcome_bytes(outcomes) -> bytes:
    """A byte-exact encoding of the measurements (floats via repr)."""
    return "\n".join(
        f"{outcome.measurement.cycles!r} {outcome.measurement.compile_seconds!r}"
        for outcome in outcomes
    ).encode("utf-8")


def test_populated_store_eliminates_simulation_on_second_run(tmp_path, monkeypatch):
    kernels = list(polybench_suite())
    requests = _grid_requests(kernels)
    assert len(requests) >= 100, "polybench grid should be a real workload"

    # Run 1: cold, populating the on-disk store.
    cold_cache = DiskBackedRewardCache.open(str(tmp_path))
    cold_service = EvaluationService(CompileAndMeasure(), cold_cache, workers=0)
    cold_outcomes = cold_service.evaluate(requests)
    cold_cache.close()
    unique_misses = sum(1 for outcome in cold_outcomes if not outcome.was_cached)
    assert cold_cache.store.stats.appended == unique_misses > 0

    # Run 2: a brand-new pipeline and cache in a "new process" — every
    # measurement must come from disk, with the simulator never invoked.
    calls = {"count": 0}
    original = Simulator.simulate

    def counting(self, *args, **kwargs):
        calls["count"] += 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(Simulator, "simulate", counting)
    warm_cache = DiskBackedRewardCache.open(str(tmp_path))
    warm_service = EvaluationService(CompileAndMeasure(), warm_cache, workers=0)
    warm_outcomes = warm_service.evaluate(requests)
    warm_cache.close()

    assert calls["count"] == 0, "warm run must not touch the simulator"
    assert all(outcome.was_cached for outcome in warm_outcomes)
    assert warm_cache.preloaded == unique_misses
    assert _outcome_bytes(warm_outcomes) == _outcome_bytes(cold_outcomes)


def test_sharded_workers_byte_identical_to_serial(tmp_path):
    kernels = list(polybench_suite())
    requests = _grid_requests(kernels)

    serial_service = EvaluationService(CompileAndMeasure(), workers=0)
    serial_outcomes = serial_service.evaluate(requests)

    with EvaluationService(CompileAndMeasure(), workers=2) as sharded_service:
        sharded_outcomes = sharded_service.evaluate(requests)
        # Every unique miss went to a worker (none evaluated in-process) and
        # kernel-hash sharding kept each kernel on exactly one worker.
        assert sharded_service.stats.serial_batches == 0
        assert sharded_service.stats.completed == sharded_service.stats.dispatched
        assert sum(sharded_service.stats.per_worker_completed.values()) == (
            sharded_service.stats.completed
        )

    assert _outcome_bytes(sharded_outcomes) == _outcome_bytes(serial_outcomes)
