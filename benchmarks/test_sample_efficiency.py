"""Sample-efficiency claim of §4: the policy converges to a positive reward
mean with a few thousand samples — "35x less than that required for a
brute-force search or a supervised learning method".

Expected shape: the PPO policy reaches a positive (better-than-baseline)
reward mean using far fewer environment steps (compilations) than brute force
would need to label the same training loops.
"""

from repro.core.framework import build_embedding_model
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.synthetic import SyntheticDatasetConfig, generate_synthetic_dataset
from repro.rl.env import VectorizationEnv, build_samples
from repro.rl.policy import make_policy
from repro.rl.ppo import PPOConfig, PPOTrainer


def test_sample_efficiency_vs_bruteforce(benchmark):
    kernels = list(generate_synthetic_dataset(SyntheticDatasetConfig(count=80, seed=1)))
    pipeline = CompileAndMeasure()
    embedding = build_embedding_model(kernels)
    samples = build_samples(kernels, embedding, pipeline)
    env = VectorizationEnv(samples, pipeline=pipeline, seed=1)
    policy = make_policy("discrete", env.observation_dim, seed=1)
    trainer = PPOTrainer(
        env,
        policy,
        PPOConfig(learning_rate=5e-4, train_batch_size=200, minibatch_size=64,
                  epochs_per_batch=6),
    )

    def run():
        return trainer.train(total_steps=4000, batch_size=200)

    history = benchmark.pedantic(run, iterations=1, rounds=1)
    converged_at = history.converged_at(threshold=0.0)
    brute_force_compilations = len(samples) * 35  # full grid per training loop
    print()
    print("reward curve:", [round(r, 3) for r in history.reward_curve()])
    print(
        f"converged (reward mean > 0) after {converged_at} compilations; "
        f"brute-force labelling of the same loops needs {brute_force_compilations}"
    )

    assert converged_at is not None, "policy never reached a positive reward mean"
    assert converged_at < brute_force_compilations
    benchmark.extra_info["converged_at_steps"] = converged_at
    benchmark.extra_info["bruteforce_equivalent_steps"] = brute_force_compilations
    benchmark.extra_info["sample_efficiency_factor"] = round(
        brute_force_compilations / converged_at, 2
    )
