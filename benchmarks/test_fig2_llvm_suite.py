"""Figure 2: brute-force search on the vectorizer test-suite vs the baseline.

Paper: the brute-force optimum beats the baseline on every test, by up to
~1.5x, with the gap growing for more complicated tests.  Expected shape:
brute force never loses, the average headroom is well above 1x, and the
hardest kernels show the largest gaps.
"""

from repro.evaluation.figures import figure2_bruteforce_suite


def test_fig2_bruteforce_vs_baseline(benchmark):
    result = benchmark.pedantic(figure2_bruteforce_suite, iterations=1, rounds=1)
    print()
    print(result.format_table().render())

    assert all(value >= 0.999 for value in result.speedups.values())
    assert result.average > 1.2
    assert result.maximum > 1.5

    benchmark.extra_info["average_headroom"] = round(result.average, 3)
    benchmark.extra_info["max_headroom"] = round(result.maximum, 3)
    benchmark.extra_info["kernels"] = len(result.speedups)
