"""BENCH_serving.json writer — the compile-service perf trajectory.

Measures the serving front door the way a deployment would see it and
appends one labelled entry to ``BENCH_serving.json``:

* **throughput** — requests/second for the same warm request stream served
  two ways: *single* (``max_batch_size=1``, one request in flight at a
  time — the pre-serving, call-the-framework-per-request shape) versus
  *coalesced* (the admission queue batches the whole stream, duplicate
  in-flight kernels share one computation, every tick runs one shared-trunk
  ``act_batch`` forward).  The ratio is the headline number: coalesced
  serving must stay ≥3x single-request throughput.
* **warm store** — a brand-new service on a reopened
  :class:`~repro.distributed.store.DiskBackedRewardCache` answers the whole
  unique-kernel set with **zero** ``Simulator.simulate`` calls (the
  ``store`` tier end to end).

Run it from the repo root::

    PYTHONPATH=src python benchmarks/serving.py --label my-change

``--tiny`` shrinks the workload for CI smoke runs; ``--check`` validates
the written file's schema and fails if coalesced throughput ever drops
below 3x single or the warm store simulates anything.  Each entry records
its workload, so readers compare entries with equal ``workload`` only.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

SCHEMA = "bench-serving/v1"

#: Fields every entry must carry (``--check`` enforces these).
_ENTRY_KEYS = ("label", "workload", "throughput", "warm_store")

#: The acceptance floor: coalesced serving versus one-at-a-time serving.
MIN_COALESCED_OVER_SINGLE = 3.0


def _workload(tiny: bool) -> Dict[str, object]:
    if tiny:
        return {
            "tiny": True,
            "unique_kernels": 4,
            "repeats_per_kernel": 24,
            "train_steps": 40,
            "train_batch": 20,
            "max_batch_size": 96,
            "max_wait_us": 2000,
            "seed": 0,
            "tasks": ["vectorization", "unrolling"],
        }
    return {
        "tiny": False,
        "unique_kernels": 8,
        "repeats_per_kernel": 32,
        "train_steps": 120,
        "train_batch": 40,
        "max_batch_size": 128,
        "max_wait_us": 2000,
        "seed": 0,
        "tasks": ["vectorization", "unrolling"],
    }


def _train_framework(workload: Dict[str, object]):
    """A tiny trained framework whose policy the services serve."""
    from repro.core.framework import NeuroVectorizer, TrainingConfig
    from repro.datasets.synthetic import (
        SyntheticDatasetConfig,
        generate_synthetic_dataset,
    )

    kernels = list(
        generate_synthetic_dataset(
            SyntheticDatasetConfig(
                count=int(workload["unique_kernels"]), seed=int(workload["seed"])
            )
        )
    )
    config = TrainingConfig(
        tasks=list(workload["tasks"]),
        rl_total_steps=int(workload["train_steps"]),
        rl_batch_size=int(workload["train_batch"]),
        pretrain_epochs=0,
        seed=int(workload["seed"]),
    )
    framework, _artifacts = NeuroVectorizer.train(kernels, config)
    return framework, kernels


def _request_stream(workload: Dict[str, object], kernels) -> list:
    """The benchmark traffic: every kernel repeated, tasks round-robin."""
    from repro.serving import CompileRequest

    tasks = list(workload["tasks"])
    stream = []
    for repeat in range(int(workload["repeats_per_kernel"])):
        for index, kernel in enumerate(kernels):
            stream.append(
                CompileRequest(
                    source=kernel.source,
                    function_name=kernel.function_name,
                    task=tasks[index % len(tasks)],
                    name=kernel.name,
                    bindings=dict(kernel.bindings),
                    request_id=f"r{repeat}-{index}",
                )
            )
    return stream


def _fresh_service(framework, workload: Dict[str, object], reward_cache,
                   max_batch_size: int, max_wait_us: int):
    """A service with its own observation memo on a shared reward cache."""
    from repro.serving import CompileService

    return CompileService(
        framework.agent.policy,
        framework.embedding_model,
        tasks=list(workload["tasks"]),
        reward_cache=reward_cache,
        max_batch_size=max_batch_size,
        max_wait_us=max_wait_us,
    )


def _count_simulations(body):
    from repro.simulator.engine import Simulator

    calls = {"n": 0}
    original = Simulator.simulate

    def counting(self, *args, **kwargs):
        calls["n"] += 1
        return original(self, *args, **kwargs)

    Simulator.simulate = counting
    try:
        result = body()
    finally:
        Simulator.simulate = original
    return result, calls["n"]


def bench_throughput(framework, kernels, workload: Dict[str, object],
                     reward_cache) -> Dict[str, object]:
    """Requests/second: one-at-a-time versus coalesced, same warm stream.

    Both services share the pre-warmed reward cache and start with empty
    observation memos, so the gap is pure serving machinery: admission
    batching, in-flight dedup and the single-forward tick.
    """
    stream = _request_stream(workload, kernels)

    # Single: one request in flight at a time, no coalescing window.
    single = _fresh_service(framework, workload, reward_cache,
                            max_batch_size=1, max_wait_us=0)
    with single:
        start = time.perf_counter()
        for request in stream:
            response = single.optimize(request)
            if not response.ok:
                raise RuntimeError(f"single-request serving failed: {response.error}")
        single_seconds = time.perf_counter() - start

    # Coalesced: the whole stream is admitted up front; the tick worker
    # batches it, duplicates share leaders.
    coalesced = _fresh_service(
        framework, workload, reward_cache,
        max_batch_size=int(workload["max_batch_size"]),
        max_wait_us=int(workload["max_wait_us"]),
    )
    futures = [coalesced.submit(request) for request in stream]
    start = time.perf_counter()
    coalesced.start()
    responses = [future.result(timeout=120) for future in futures]
    coalesced_seconds = time.perf_counter() - start
    coalesced.stop()
    for response in responses:
        if not response.ok:
            raise RuntimeError(f"coalesced serving failed: {response.error}")

    report = coalesced.report()
    requests = len(stream)
    single_rate = requests / single_seconds if single_seconds > 0 else float("inf")
    coalesced_rate = (
        requests / coalesced_seconds if coalesced_seconds > 0 else float("inf")
    )
    return {
        "requests": requests,
        "single_seconds": single_seconds,
        "single_requests_per_second": single_rate,
        "coalesced_seconds": coalesced_seconds,
        "coalesced_requests_per_second": coalesced_rate,
        "coalesced_over_single": coalesced_rate / single_rate,
        "coalesced_report": report.as_dict(),
    }


def bench_warm_store(framework, kernels, workload: Dict[str, object],
                     store_dir: Path) -> Dict[str, object]:
    """Fully warm persistent store: zero simulator calls for the whole set."""
    from repro.distributed import DiskBackedRewardCache

    stream = _request_stream(workload, kernels)
    unique = {request.fingerprint(): request for request in stream}

    cold_cache = DiskBackedRewardCache.open(str(store_dir))
    with _fresh_service(framework, workload, cold_cache,
                        max_batch_size=int(workload["max_batch_size"]),
                        max_wait_us=0) as service:
        for request in unique.values():
            response = service.optimize(request)
            if not response.ok:
                raise RuntimeError(f"store warm-up failed: {response.error}")
    cold_cache.close()

    warm_cache = DiskBackedRewardCache.open(str(store_dir))
    warm_service = _fresh_service(framework, workload, warm_cache,
                                  max_batch_size=int(workload["max_batch_size"]),
                                  max_wait_us=0)

    def serve_all():
        with warm_service:
            return [
                warm_service.optimize(request) for request in unique.values()
            ]

    responses, simulations = _count_simulations(serve_all)
    report = warm_service.report()
    preloaded = warm_cache.preloaded
    warm_cache.close()
    tiers = {response.tier for response in responses}
    return {
        "requests": len(responses),
        "preloaded_measurements": preloaded,
        "simulations": simulations,
        "tiers": sorted(tiers),
        "store_rate": report.tier_rate("store"),
    }


def run_benchmark(label: str, tiny: bool, store_dir: Path) -> Dict[str, object]:
    """Run both serving measurements and return one trajectory entry."""
    from repro.cache.reward_cache import RewardCache

    workload = _workload(tiny)
    entry: Dict[str, object] = {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": workload,
    }
    framework, kernels = _train_framework(workload)
    try:
        # Pre-warm one shared cache so both throughput arms serve the same
        # (store-tier) work and the ratio isolates the serving machinery.
        warmup = RewardCache()
        warm_service = _fresh_service(framework, workload, warmup,
                                      max_batch_size=64, max_wait_us=0)
        with warm_service:
            for request in _request_stream(workload, kernels):
                warm_service.optimize(request)
        entry["throughput"] = bench_throughput(framework, kernels, workload, warmup)
        entry["warm_store"] = bench_warm_store(framework, kernels, workload,
                                               store_dir)
    finally:
        framework.close()
    return entry


# ---------------------------------------------------------------------------
# Trajectory file handling
# ---------------------------------------------------------------------------


def load_trajectory(path: Path) -> Dict[str, object]:
    if path.exists():
        payload = json.loads(path.read_text())
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"{path} has schema {payload.get('schema')!r}, expected {SCHEMA!r}"
            )
        return payload
    return {"schema": SCHEMA, "entries": []}


def append_entry(path: Path, entry: Dict[str, object]) -> Dict[str, object]:
    payload = load_trajectory(path)
    payload["entries"].append(entry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return payload


def validate(payload: Dict[str, object]) -> List[str]:
    """Schema/regression checks; returns a list of problems (empty = OK)."""
    problems: List[str] = []
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}")
    entries = payload.get("entries")
    if not isinstance(entries, list) or not entries:
        return problems + ["entries must be a non-empty list"]
    for index, entry in enumerate(entries):
        for key in _ENTRY_KEYS:
            if key not in entry:
                problems.append(f"entry {index} ({entry.get('label')}) lacks {key!r}")
        throughput = entry.get("throughput", {})
        for key in ("single_requests_per_second", "coalesced_requests_per_second"):
            value = throughput.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"entry {index}: bad throughput {key}={value!r}")
        ratio = throughput.get("coalesced_over_single")
        if not isinstance(ratio, (int, float)) or ratio < MIN_COALESCED_OVER_SINGLE:
            problems.append(
                f"entry {index} ({entry.get('label')}): coalesced serving is "
                f"{ratio!r}x single-request throughput, below the "
                f"{MIN_COALESCED_OVER_SINGLE}x floor"
            )
        warm_store = entry.get("warm_store", {})
        simulations = warm_store.get("simulations")
        if simulations != 0:
            problems.append(
                f"entry {index} ({entry.get('label')}): warm store ran "
                f"{simulations!r} simulations, expected 0"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serving.json",
        help="trajectory file to append to (default: repo-root BENCH_serving.json)",
    )
    parser.add_argument("--label", default="unlabelled", help="entry label")
    parser.add_argument(
        "--tiny", action="store_true", help="CI-sized workload (seconds, not minutes)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the file after writing; non-zero exit on problems",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-serving-store-") as store_dir:
        entry = run_benchmark(args.label, tiny=args.tiny,
                              store_dir=Path(store_dir) / "store")
    payload = append_entry(args.output, entry)
    throughput = entry["throughput"]
    warm_store = entry["warm_store"]
    print(f"wrote {args.output} ({len(payload['entries'])} entries)")
    print(
        f"  single: {throughput['single_requests_per_second']:,.0f} req/s "
        f"({throughput['requests']} requests in {throughput['single_seconds']:.2f}s)"
    )
    print(
        f"  coalesced: {throughput['coalesced_requests_per_second']:,.0f} req/s "
        f"({throughput['coalesced_over_single']:.1f}x single)"
    )
    print(
        f"  warm store: {warm_store['requests']} requests, "
        f"{warm_store['simulations']} simulations, tiers {warm_store['tiers']}"
    )
    if args.check:
        problems = validate(payload)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
