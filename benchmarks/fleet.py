"""BENCH_fleet.json writer — the fleet-evaluation perf trajectory.

Measures the multi-host evaluation fleet the way a training run sees it
and appends one labelled entry to ``BENCH_fleet.json``:

* **prefetch** — a small PPO run with two localhost
  :class:`~repro.fleet.FleetWorker` daemons and speculative prefetch
  covering the whole action menu.  The headline number is
  ``waits_converted``: the fraction of async reward waits the policy-driven
  prefetcher turned into store hits (or joins on already-speculated work)
  instead of dispatch-and-wait round trips.  Must stay ≥ 0.5.
* **fault tolerance** — the same sharded request grid evaluated twice:
  serially (ground truth) and on a two-worker fleet where one worker is
  armed to die mid-batch.  The orphaned work must re-shard onto the
  survivor and the results must stay byte-identical to serial.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/fleet.py --label my-change

``--tiny`` shrinks the workload for CI smoke runs; ``--check`` validates
the written file's schema and fails if waits-converted ever drops below
the floor or a faulted run stops matching serial.  Each entry records its
workload, so readers compare entries with equal ``workload`` only.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

SCHEMA = "bench-fleet/v1"

#: Fields every entry must carry (``--check`` enforces these).
_ENTRY_KEYS = ("label", "workload", "prefetch", "fault_tolerance")

#: The acceptance floor: async waits the prefetcher must absorb.
MIN_WAITS_CONVERTED = 0.5


def _workload(tiny: bool) -> Dict[str, object]:
    if tiny:
        return {
            "tiny": True,
            "unique_kernels": 4,
            "train_steps": 160,
            "train_batch": 32,
            "prefetch_top_k": 35,
            "fleet_workers": 2,
            "seed": 0,
            "tasks": ["vectorization"],
        }
    return {
        "tiny": False,
        "unique_kernels": 4,
        "train_steps": 320,
        "train_batch": 32,
        "prefetch_top_k": 35,
        "fleet_workers": 2,
        "seed": 0,
        "tasks": ["vectorization"],
    }


def _kernels(workload: Dict[str, object]):
    from repro.datasets.synthetic import (
        SyntheticDatasetConfig,
        generate_synthetic_dataset,
    )

    return list(
        generate_synthetic_dataset(
            SyntheticDatasetConfig(
                count=int(workload["unique_kernels"]), seed=int(workload["seed"])
            )
        )
    )


def _start_fleet(count: int):
    from repro.fleet import FleetWorker

    workers = [FleetWorker().start() for _ in range(count)]
    addresses = ["%s:%d" % worker.address for worker in workers]
    return workers, addresses


def bench_prefetch(workload: Dict[str, object]) -> Dict[str, object]:
    """Train with a two-worker fleet and report the prefetch ledger.

    ``prefetch_top_k`` covers the whole vectorization menu (7 VFs x 5 IFs
    = 35 joint actions), so after the first batch every reward the policy
    asks for should already be speculated — the waits-converted rate is
    the fraction of demand lookups that found prefetched (or in-flight
    speculated) work instead of dispatching and waiting.
    """
    from repro.core.framework import NeuroVectorizer, TrainingConfig

    workers, addresses = _start_fleet(int(workload["fleet_workers"]))
    try:
        config = TrainingConfig(
            tasks=list(workload["tasks"]),
            rl_total_steps=int(workload["train_steps"]),
            rl_batch_size=int(workload["train_batch"]),
            pretrain_epochs=0,
            seed=int(workload["seed"]),
            fleet_workers=addresses,
            fleet_prefetch_top_k=int(workload["prefetch_top_k"]),
        )
        start = time.perf_counter()
        framework, _artifacts = NeuroVectorizer.train(
            _kernels(workload), config
        )
        seconds = time.perf_counter() - start
        stats = framework.evaluation_service.stats
        result = {
            "train_seconds": seconds,
            "fleet_workers": framework.evaluation_service.workers,
            "dispatched": stats.dispatched,
            "completed": stats.completed,
            "demand_dispatched": stats.demand_dispatched,
            "prefetch_issued": stats.prefetch_issued,
            "prefetch_hits": stats.prefetch_hits,
            "prefetch_joined": stats.prefetch_joined,
            "prefetch_wasted": stats.prefetch_wasted,
            "waits_converted": stats.waits_converted,
            "workers_lost": stats.workers_lost,
            "errors": stats.errors,
        }
        framework.close()
        return result
    finally:
        for worker in workers:
            worker.stop()


def bench_fault_tolerance(workload: Dict[str, object]) -> Dict[str, object]:
    """Kill one of two workers mid-batch; results must still match serial."""
    from repro.cache.reward_cache import RewardCache
    from repro.core.pipeline import CompileAndMeasure
    from repro.distributed import EvaluationService
    from repro.fleet import FleetEvaluationService, FleetWorker, WorkerFaults

    kernels = _kernels(workload)
    requests = [
        (kernel, 0, vf, interleave)
        for kernel in kernels
        for vf in (1, 2, 4, 8)
        for interleave in (1, 2)
    ]

    def tuples(outcomes):
        return [
            (o.measurement.cycles, o.measurement.compile_seconds) for o in outcomes
        ]

    serial = tuples(
        EvaluationService(CompileAndMeasure(), workers=0).evaluate(requests)
    )

    workers = [
        FleetWorker(faults=WorkerFaults(die_after=2)).start(),
        FleetWorker().start(),
    ]
    try:
        service = FleetEvaluationService(
            CompileAndMeasure(),
            RewardCache(),
            addresses=["%s:%d" % worker.address for worker in workers],
            heartbeat_interval=0.1,
            heartbeat_timeout=3.0,
        )
        try:
            start = time.perf_counter()
            fleet = tuples(service.evaluate(requests))
            seconds = time.perf_counter() - start
            stats = service.stats
            return {
                "requests": len(requests),
                "seconds": seconds,
                "matches_serial": fleet == serial,
                "workers_lost": stats.workers_lost,
                "retries": stats.retries,
                "reshards": stats.reshards,
                "inline_evaluations": stats.inline_evaluations,
                "completed": stats.completed,
                "survivors": service.workers,
            }
        finally:
            service.close()
    finally:
        for worker in workers:
            worker.stop()


def run_benchmark(label: str, tiny: bool) -> Dict[str, object]:
    """Run both fleet measurements and return one trajectory entry."""
    workload = _workload(tiny)
    return {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": workload,
        "prefetch": bench_prefetch(workload),
        "fault_tolerance": bench_fault_tolerance(workload),
    }


# ---------------------------------------------------------------------------
# Trajectory file handling
# ---------------------------------------------------------------------------


def load_trajectory(path: Path) -> Dict[str, object]:
    if path.exists():
        payload = json.loads(path.read_text())
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"{path} has schema {payload.get('schema')!r}, expected {SCHEMA!r}"
            )
        return payload
    return {"schema": SCHEMA, "entries": []}


def append_entry(path: Path, entry: Dict[str, object]) -> Dict[str, object]:
    payload = load_trajectory(path)
    payload["entries"].append(entry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return payload


def validate(payload: Dict[str, object]) -> List[str]:
    """Schema/regression checks; returns a list of problems (empty = OK)."""
    problems: List[str] = []
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}")
    entries = payload.get("entries")
    if not isinstance(entries, list) or not entries:
        return problems + ["entries must be a non-empty list"]
    for index, entry in enumerate(entries):
        for key in _ENTRY_KEYS:
            if key not in entry:
                problems.append(f"entry {index} ({entry.get('label')}) lacks {key!r}")
        prefetch = entry.get("prefetch", {})
        converted = prefetch.get("waits_converted")
        if not isinstance(converted, (int, float)) or converted < MIN_WAITS_CONVERTED:
            problems.append(
                f"entry {index} ({entry.get('label')}): prefetch converted "
                f"{converted!r} of async waits, below the "
                f"{MIN_WAITS_CONVERTED} floor"
            )
        if prefetch.get("errors") != 0:
            problems.append(
                f"entry {index} ({entry.get('label')}): training run saw "
                f"{prefetch.get('errors')!r} worker errors, expected 0"
            )
        fault = entry.get("fault_tolerance", {})
        if fault.get("matches_serial") is not True:
            problems.append(
                f"entry {index} ({entry.get('label')}): faulted fleet run did "
                "not match the serial ground truth"
            )
        if fault.get("workers_lost") != 1:
            problems.append(
                f"entry {index} ({entry.get('label')}): expected exactly one "
                f"lost worker, saw {fault.get('workers_lost')!r}"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_fleet.json",
        help="trajectory file to append to (default: repo-root BENCH_fleet.json)",
    )
    parser.add_argument("--label", default="unlabelled", help="entry label")
    parser.add_argument(
        "--tiny", action="store_true", help="CI-sized workload (seconds, not minutes)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the file after writing; non-zero exit on problems",
    )
    args = parser.parse_args(argv)

    entry = run_benchmark(args.label, tiny=args.tiny)
    payload = append_entry(args.output, entry)
    prefetch = entry["prefetch"]
    fault = entry["fault_tolerance"]
    print(f"wrote {args.output} ({len(payload['entries'])} entries)")
    print(
        f"  prefetch: {prefetch['waits_converted']:.2f} of async waits converted "
        f"({prefetch['prefetch_hits']} hits + {prefetch['prefetch_joined']} joins "
        f"vs {prefetch['demand_dispatched']} demand dispatches)"
    )
    print(
        f"  fault tolerance: matches_serial={fault['matches_serial']} "
        f"(lost {fault['workers_lost']}, re-sharded {fault['reshards']}, "
        f"{fault['requests']} requests in {fault['seconds']:.2f}s)"
    )
    if args.check:
        problems = validate(payload)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
