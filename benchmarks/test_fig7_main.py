"""Figure 7: the main comparison on the 12 held-out test benchmarks.

Paper: RL reaches 2.67x over the baseline on average, only ~3% below brute
force; NNS (2.65x) and decision trees (2.47x) are close behind; random search
lands *below* the baseline; Polly improves on the baseline by ~17% but stays
well below RL.  Expected shape: brute force >= RL > Polly/baseline, RL captures
most of the brute-force headroom, random and Polly stay far below RL.
"""

from repro.datasets.llvm_suite import test_benchmarks as held_out_benchmarks
from repro.evaluation.comparison import compare_methods
from repro.evaluation.report import format_speedup_table


def test_fig7_main_comparison(benchmark, trained_agents):
    def run():
        return compare_methods(
            list(held_out_benchmarks()),
            trained_agents,
            include_polly=True,
            include_supervised=True,
        )

    comparison = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_speedup_table(
            comparison.speedups,
            comparison.methods,
            title="Figure 7: performance normalised to the baseline cost model",
        ).render()
    )
    averages = {method: comparison.average(method) for method in comparison.methods}
    print("averages:", {k: round(v, 2) for k, v in averages.items()})

    assert averages["baseline"] == 1.0
    # Brute force is the oracle; RL captures most of its headroom.
    assert averages["brute_force"] >= averages["rl"]
    assert averages["brute_force"] > 1.5
    assert averages["rl"] > 1.3
    assert averages["rl"] >= 0.6 * averages["brute_force"]
    # RL beats the untrained comparators.
    assert averages["rl"] > averages["random"]
    assert averages["rl"] > averages["polly"]
    # The learned embedding also carries the supervised methods above the
    # worst-case, and the oracle dominates everything.
    for method in ("nns", "decision_tree", "random", "polly"):
        assert averages["brute_force"] >= averages[method]

    benchmark.extra_info["average_speedups"] = {
        method: round(value, 3) for method, value in averages.items()
    }
    benchmark.extra_info["rl_fraction_of_bruteforce"] = round(
        averages["rl"] / averages["brute_force"], 3
    )
