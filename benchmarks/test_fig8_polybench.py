"""Figure 8: transfer to PolyBench (baseline vs Polly vs RL vs Polly+RL).

Paper: on PolyBench — the suite Polly is optimised for — deep RL averages
2.08x over the baseline and 1.16x over Polly, Polly wins on the kernels with
the largest iteration counts, and combining Polly with the RL vectorizer
reaches 2.92x.  Expected shape: both Polly and RL beat the baseline on
average, Polly is strong here (locality transformations), and the combination
beats either alone.
"""

from repro.datasets.polybench import polybench_suite
from repro.evaluation.comparison import compare_methods
from repro.evaluation.report import format_speedup_table


def test_fig8_polybench_transfer(benchmark, trained_agents):
    def run():
        return compare_methods(
            list(polybench_suite()),
            trained_agents,
            include_polly=True,
            include_supervised=False,
            include_combined=True,
        )

    comparison = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_speedup_table(
            comparison.speedups,
            comparison.methods,
            title="Figure 8: PolyBench, normalised to the baseline",
        ).render()
    )
    averages = {method: comparison.average(method) for method in comparison.methods}
    print("averages:", {k: round(v, 2) for k, v in averages.items()})

    # Polly is strong on PolyBench and beats the plain baseline.
    assert averages["polly"] > 1.05
    # The RL vectorizer also improves on the baseline on unseen PolyBench code.
    assert averages["rl"] > 1.0
    # Combining Polly's locality transformations with learned factors is the
    # best configuration, as the paper reports (2.92x).
    assert averages["polly+rl"] >= averages["polly"] - 1e-9
    assert averages["polly+rl"] >= averages["rl"]
    assert averages["polly+rl"] > 1.3

    benchmark.extra_info["average_speedups"] = {
        method: round(value, 3) for method, value in averages.items()
    }
