"""Figure 1: dot-product performance for every (VF, IF), normalised to baseline.

Paper: the baseline cost model picks (VF=4, IF=2); 26 of the 35 possible
factor pairs beat it; the best pair improves on it by ~20%.  The expected
*shape* here: the baseline picks the same (4, 2), a clear majority of pairs
beat it, and the best pair is noticeably better.
"""

from repro.evaluation.figures import figure1_dot_product_grid


def test_fig1_dot_product_grid(benchmark):
    result = benchmark.pedantic(figure1_dot_product_grid, iterations=1, rounds=1)
    print()
    print(result.format_table().render())
    print(
        f"best factors: VF={result.best_factors[0]}, IF={result.best_factors[1]} "
        f"({result.best_speedup:.2f}x over baseline); "
        f"{result.fraction_better_than_baseline * 100:.0f}% of pairs beat the baseline"
    )

    assert result.baseline_factors == (4, 2)
    assert result.fraction_better_than_baseline >= 0.5
    assert result.best_speedup > 1.1
    assert len(result.grid) == 35
    # The non-vectorized point (VF=1, IF=1) is clearly worse than the baseline,
    # mirroring the paper's 2.6x baseline-over-scalar observation.
    assert result.grid[(1, 1)] < 0.6

    benchmark.extra_info["baseline_factors"] = result.baseline_factors
    benchmark.extra_info["best_factors"] = result.best_factors
    benchmark.extra_info["best_speedup"] = round(result.best_speedup, 3)
    benchmark.extra_info["fraction_better"] = round(
        result.fraction_better_than_baseline, 3
    )
