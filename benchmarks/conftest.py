"""Shared fixtures for the benchmark harness.

The Figure 7/8/9 benches share a single trained agent set (training once per
benchmark session keeps the harness runtime reasonable while preserving the
paper's methodology: train on the synthetic corpus, evaluate frozen agents on
held-out suites).
"""

from __future__ import annotations

import pytest

from repro.datasets.llvm_suite import llvm_vectorizer_suite, test_benchmarks
from repro.datasets.synthetic import SyntheticDatasetConfig, generate_synthetic_dataset
from repro.evaluation.comparison import train_reference_agents


#: Scaled-down but shape-preserving training budget for the benches.
TRAIN_KERNEL_COUNT = 120
RL_STEPS = 4000
RL_BATCH = 250
LEARNING_RATE = 5e-4


@pytest.fixture(scope="session")
def trained_agents():
    kernels = list(
        generate_synthetic_dataset(SyntheticDatasetConfig(count=TRAIN_KERNEL_COUNT, seed=0))
    )
    held_out = set(test_benchmarks().names())
    kernels.extend(k for k in llvm_vectorizer_suite() if k.name not in held_out)
    return train_reference_agents(
        kernels,
        rl_steps=RL_STEPS,
        rl_batch_size=RL_BATCH,
        learning_rate=LEARNING_RATE,
        pretrain_epochs=1,
        seed=0,
    )
