"""Ablation benches for design choices called out in DESIGN.md / the paper.

1. Embedding input: the paper reports that feeding the *outermost* loop of a
   nest to the embedding generator works better than feeding only the
   innermost body — here we check the two inputs are at least distinguishable
   and that the nest-level embedding carries the outer-loop context.
2. Compile-time penalty (§3.4): with the 10x compile-time cap the agent's
   reward for absurdly wide factors on a wide-double kernel is the -9 penalty.
3. Machine-width ablation: the same kernels, compiled for a 512-bit machine,
   gain more from wide VFs than on the 256-bit machine.
"""

import numpy as np

from repro.core.framework import build_embedding_model
from repro.core.loop_extractor import extract_loops
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.datasets.llvm_suite import llvm_vectorizer_suite
from repro.datasets.synthetic import SyntheticDatasetConfig, generate_synthetic_dataset
from repro.embedding.ast_paths import extract_path_contexts
from repro.embedding.vocab import normalize_identifiers
from repro.machine.description import avx2_machine, avx512_machine
from repro.rl.env import VectorizationEnv, build_samples
from repro.vectorizer.bruteforce import brute_force_search
from repro.simulator.engine import Simulator


MATMUL = """
float A[128][128], B[128][128], C[128][128];
void kernel(float alpha) {
    for (int i = 0; i < 128; i++) {
        for (int j = 0; j < 128; j++) {
            float sum = 0;
            for (int k = 0; k < 128; k++) {
                sum += alpha * A[i][k] * B[k][j];
            }
            C[i][j] = sum;
        }
    }
}
"""


def test_ablation_outer_vs_inner_embedding_input(benchmark):
    kernels = list(generate_synthetic_dataset(SyntheticDatasetConfig(count=40, seed=3)))
    embedding = build_embedding_model(kernels)

    def run():
        loops = extract_loops(MATMUL, function_name="kernel")
        loop = loops[0]
        outer_contexts = extract_path_contexts(
            loop.nest_root, rename_map=normalize_identifiers(loop.nest_root)
        )
        inner_contexts = extract_path_contexts(
            loop.ast_loop, rename_map=normalize_identifiers(loop.ast_loop)
        )
        return (
            embedding.embed(outer_contexts),
            embedding.embed(inner_contexts),
            len(outer_contexts),
            len(inner_contexts),
        )

    outer, inner, outer_count, inner_count = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    print()
    print(f"outer-nest contexts: {outer_count}, inner-body contexts: {inner_count}")
    # The outer nest exposes strictly more structure to the embedding, and the
    # two observations differ — the knob the paper ablates is real.
    assert outer_count > inner_count
    assert not np.allclose(outer, inner)
    benchmark.extra_info["outer_contexts"] = outer_count
    benchmark.extra_info["inner_contexts"] = inner_count


def test_ablation_compile_time_penalty(benchmark):
    kernel = LoopKernel(
        name="wide_double",
        source=(
            "double a[8192], b[8192], c[8192], d[8192], e[8192], f2[8192];\n"
            "void kernel() { for (int i = 0; i < 8192; i++)"
            " f2[i] = a[i] * b[i] + c[i] * d[i] + e[i] * f2[i] + a[i] * c[i]; }"
        ),
        function_name="kernel",
    )
    pipeline = CompileAndMeasure()
    embedding = build_embedding_model([kernel])
    samples = build_samples([kernel], embedding, pipeline)

    def run():
        capped = VectorizationEnv(samples, pipeline=pipeline, compile_time_limit=2.0)
        uncapped = VectorizationEnv(samples, pipeline=pipeline, compile_time_limit=1e9)
        with_cap, _ = capped.evaluate_factors(samples[0], 64, 16)
        without_cap, _ = uncapped.evaluate_factors(samples[0], 64, 16)
        return with_cap, without_cap

    with_cap, without_cap = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(f"reward with compile-time cap: {with_cap}, without: {round(without_cap, 3)}")
    assert with_cap == -9.0
    assert without_cap > -9.0
    benchmark.extra_info["capped_reward"] = with_cap
    benchmark.extra_info["uncapped_reward"] = round(without_cap, 3)


def test_ablation_vector_width(benchmark):
    suite = [k for k in llvm_vectorizer_suite() if k.name in
             ("sum_reduction_float", "saxpy", "double_precision_scale")]

    def run():
        headroom = {}
        for name, machine in (("avx2", avx2_machine()), ("avx512", avx512_machine())):
            total = []
            for kernel in suite:
                ir = kernel.lower()
                simulator = Simulator(machine=machine, bindings=kernel.bindings)
                result = brute_force_search(ir, machine=machine, simulator=simulator)
                total.append(result.speedup_over_baseline())
            headroom[name] = float(np.mean(total))
        return headroom

    headroom = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("brute-force headroom over baseline by machine:",
          {k: round(v, 2) for k, v in headroom.items()})
    # Both machines leave headroom over the conservative baseline; the wider
    # machine's optimum uses wider registers, so its headroom is at least
    # comparable (paper §5: different targets want separately tuned models).
    assert headroom["avx2"] > 1.2
    assert headroom["avx512"] > 1.2
    benchmark.extra_info["headroom"] = {k: round(v, 3) for k, v in headroom.items()}
