"""Joint multi-task training vs per-task training: wall-clock and reward.

The multi-task pitch: one shared-trunk policy with task-conditioned heads
amortizes embedding/trunk learning across tasks, so training N tasks
jointly for S steps costs roughly one S-step run — not N of them — while
each task still converges on its own reward signal.

Expected shape: the joint run finishes well under the summed wall-clock of
the per-task runs (it consumes the same total step budget once, over one
environment and one shared cache), and its per-task final rewards land in
the same range as the dedicated single-task runs.
"""

from __future__ import annotations

import time

from repro.core.framework import NeuroVectorizer, TrainingConfig
from repro.datasets.synthetic import SyntheticDatasetConfig, generate_synthetic_dataset

JOINT_TASKS = ("vectorization", "unrolling")
RL_STEPS = 240
RL_BATCH = 60


def _train(tasks=None, task=None):
    kernels = list(
        generate_synthetic_dataset(SyntheticDatasetConfig(count=12, seed=2))
    )
    config = TrainingConfig(
        tasks=list(tasks) if tasks else None,
        task=task or "vectorization",
        rl_total_steps=RL_STEPS,
        rl_batch_size=RL_BATCH,
        learning_rate=5e-4,
        pretrain_epochs=1,
        pretrain_samples=6,
        seed=2,
    )
    start = time.perf_counter()
    framework, artifacts = NeuroVectorizer.train(kernels, config)
    elapsed = time.perf_counter() - start
    framework.close()
    return elapsed, artifacts.history


def test_joint_vs_per_task_training(benchmark):
    per_task_seconds = {}
    per_task_rewards = {}
    for name in JOINT_TASKS:
        elapsed, history = _train(task=name)
        per_task_seconds[name] = elapsed
        per_task_rewards[name] = history.final_reward_mean

    def run_joint():
        return _train(tasks=JOINT_TASKS)

    joint_seconds, joint_history = benchmark.pedantic(
        run_joint, iterations=1, rounds=1
    )
    joint_finals = joint_history.per_task_final_rewards()

    print()
    for name in JOINT_TASKS:
        print(
            f"{name:>14}: dedicated {per_task_seconds[name]:.2f}s "
            f"(final reward {per_task_rewards[name]:+.3f})  |  "
            f"joint head final reward {joint_finals[name]:+.3f}"
        )
    summed = sum(per_task_seconds.values())
    print(f"joint run: {joint_seconds:.2f}s vs {summed:.2f}s summed per-task runs")

    # The joint run trains every task within one step budget: it must beat
    # running each task separately (the whole amortization win).
    assert joint_seconds < summed
    # Every task trained: per-task reward rows exist and are finite.
    assert set(joint_finals) == set(JOINT_TASKS)
    for name, value in joint_finals.items():
        assert value == value, f"task {name} reward is NaN"

    benchmark.extra_info["joint_seconds"] = round(joint_seconds, 3)
    benchmark.extra_info["per_task_seconds_sum"] = round(summed, 3)
    benchmark.extra_info["joint_final_rewards"] = {
        name: round(value, 4) for name, value in joint_finals.items()
    }
    benchmark.extra_info["per_task_final_rewards"] = {
        name: round(value, 4) for name, value in per_task_rewards.items()
    }
