"""Repo-wide pytest configuration: per-test timeout enforcement.

The seed suite once hung forever on a lexer EOF bug; a per-test wall-clock
limit turns any future hang into a fast, attributable failure.  When the
``pytest-timeout`` plugin is installed (see the ``test`` extra in setup.py)
it honours the ``timeout`` ini option natively and this module stays out of
the way.  Offline environments without the plugin get a SIGALRM-based
fallback that reads the same ini option and ``@pytest.mark.timeout`` marker.
"""

from __future__ import annotations

import signal

import pytest

try:
    import pytest_timeout  # noqa: F401

    HAVE_PYTEST_TIMEOUT = True
except ImportError:
    HAVE_PYTEST_TIMEOUT = False

_FALLBACK_DEFAULT_TIMEOUT = 120.0


if not HAVE_PYTEST_TIMEOUT:

    def pytest_addoption(parser):
        # pytest-timeout normally owns this ini key; registering it here
        # (only when the plugin is absent) keeps pytest.ini warning-free.
        parser.addini(
            "timeout",
            "per-test timeout in seconds (fallback shim)",
            default=str(_FALLBACK_DEFAULT_TIMEOUT),
        )

    def _timeout_for(item) -> float:
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            return float(marker.args[0])
        try:
            return float(item.config.getini("timeout"))
        except (TypeError, ValueError):
            return _FALLBACK_DEFAULT_TIMEOUT

    def _alarm_guard(item, phase):
        seconds = _timeout_for(item)
        if seconds <= 0 or not hasattr(signal, "SIGALRM"):
            return None, None

        def _on_timeout(signum, frame):
            raise TimeoutError(
                f"test {phase} exceeded the {seconds:g}s per-test timeout "
                "(conftest fallback shim)"
            )

        previous = signal.signal(signal.SIGALRM, _on_timeout)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        return previous, seconds

    def _alarm_release(previous):
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)

    def _guarded(item, phase):
        previous, seconds = _alarm_guard(item, phase)
        try:
            yield
        finally:
            if seconds is not None:
                _alarm_release(previous)

    # A hang can live in a fixture just as easily as in the test body, so
    # setup and teardown get the same alarm as the call phase.
    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_setup(item):
        yield from _guarded(item, "setup")

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        yield from _guarded(item, "call")

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_teardown(item):
        yield from _guarded(item, "teardown")
