"""Setuptools entry point.

The pyproject.toml [project] table is the source of truth for metadata; this
file exists so that ``pip install -e .`` works in offline environments whose
setuptools lacks PEP 660 editable-wheel support.
"""

from setuptools import setup

setup(
    extras_require={
        # Per-test timeouts keep a hang from wedging the suite; environments
        # without pytest-timeout fall back to the SIGALRM shim in conftest.py.
        "test": [
            "pytest",
            "pytest-timeout",
            "pytest-benchmark",
            "hypothesis",
        ],
    },
)
