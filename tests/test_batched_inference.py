"""Batched-inference identity guarantees and hot-path memo behaviour.

The batched-inference refactor promises:

* ``act_batch`` over N observations is byte-identical (actions, log-probs,
  values) to N sequential ``act`` calls under the same seed — for
  categorical heads, Gaussian heads, and multi-task grouped batches,
* the same guarantee holds for rollouts collected through a ``workers=2``
  sharded evaluation service,
* the simulator's whole-function memo evicts LRU (not clear-all) and
  reports counters via ``memo_stats()`` / ``cache_stats_report()``,
* the process-wide frontend cache memoizes by content hash with an
  explicit cap and hit/miss/eviction stats.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.frontend.cache import FrontendCache, frontend_cache
from repro.rl.policy import (
    ContinuousPolicy,
    DiscretePolicy,
    MultiTaskPolicy,
    Policy,
)
from repro.rl.spaces import (
    ContinuousPairSpace,
    DiscreteFactorSpace,
)
from repro.simulator.engine import Simulator

_SETTINGS = settings(max_examples=20, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

OBS_DIM = 6


def _observations(count: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed + 1000).normal(size=(count, OBS_DIM))


def _assert_outputs_identical(serial, batched):
    assert len(serial) == len(batched)
    for expected, actual in zip(serial, batched):
        assert np.array_equal(expected.action, actual.action)
        assert expected.log_prob == actual.log_prob
        assert expected.value == actual.value


# ---------------------------------------------------------------------------
# act_batch == N sequential acts, byte for byte
# ---------------------------------------------------------------------------


class TestActBatchIdentity:
    @_SETTINGS
    @given(count=st.integers(1, 12), seed=st.integers(0, 2**16))
    def test_categorical_heads(self, count, seed):
        observations = _observations(count, seed)
        serial_policy = DiscretePolicy(OBS_DIM, seed=seed)
        serial = [serial_policy.act(row) for row in observations]
        batched_policy = DiscretePolicy(OBS_DIM, seed=seed)
        batched = batched_policy.act_batch(observations)
        _assert_outputs_identical(serial, batched)

    @_SETTINGS
    @given(count=st.integers(1, 12), seed=st.integers(0, 2**16))
    def test_gaussian_heads(self, count, seed):
        observations = _observations(count, seed)
        serial_policy = ContinuousPolicy(OBS_DIM, action_dims=2, seed=seed)
        serial = [serial_policy.act(row) for row in observations]
        batched_policy = ContinuousPolicy(OBS_DIM, action_dims=2, seed=seed)
        batched = batched_policy.act_batch(observations)
        _assert_outputs_identical(serial, batched)

    @_SETTINGS
    @given(count=st.integers(1, 12), seed=st.integers(0, 2**16),
           pattern=st.lists(st.integers(0, 1), min_size=12, max_size=12))
    def test_multi_task_grouped_batches(self, count, seed, pattern):
        spaces = OrderedDict(
            vectorization=DiscreteFactorSpace(),
            unrolling=DiscreteFactorSpace(menus=((1, 2, 4, 8, 16),)),
        )
        names = list(spaces)
        tasks = [names[pattern[i]] for i in range(count)]
        observations = _observations(count, seed)
        serial_policy = MultiTaskPolicy(OBS_DIM, spaces, seed=seed)
        serial = [
            serial_policy.act(row, task=task)
            for row, task in zip(observations, tasks)
        ]
        batched_policy = MultiTaskPolicy(OBS_DIM, spaces, seed=seed)
        batched = batched_policy.act_batch(observations, tasks=tasks)
        _assert_outputs_identical(serial, batched)

    @_SETTINGS
    @given(count=st.integers(1, 10), seed=st.integers(0, 2**16),
           pattern=st.lists(st.integers(0, 1), min_size=10, max_size=10))
    def test_mixed_kind_banks_keep_the_serial_draw_order(self, count, seed, pattern):
        # Discrete and Gaussian banks interleave uniform and normal draws;
        # the batched path must consume the stream in exact row order.
        spaces = OrderedDict(
            vectorization=DiscreteFactorSpace(),
            tiling=ContinuousPairSpace(),
        )
        names = list(spaces)
        tasks = [names[pattern[i]] for i in range(count)]
        observations = _observations(count, seed)
        serial_policy = MultiTaskPolicy(OBS_DIM, spaces, seed=seed)
        serial = [
            serial_policy.act(row, task=task)
            for row, task in zip(observations, tasks)
        ]
        batched_policy = MultiTaskPolicy(OBS_DIM, spaces, seed=seed)
        batched = batched_policy.act_batch(observations, tasks=tasks)
        _assert_outputs_identical(serial, batched)

    @_SETTINGS
    @given(count=st.integers(1, 12), seed=st.integers(0, 2**16))
    def test_deterministic_mode(self, count, seed):
        observations = _observations(count, seed)
        serial_policy = DiscretePolicy(OBS_DIM, seed=seed)
        serial = [serial_policy.act(row, deterministic=True) for row in observations]
        batched_policy = DiscretePolicy(OBS_DIM, seed=seed)
        batched = batched_policy.act_batch(observations, deterministic=True)
        _assert_outputs_identical(serial, batched)
        # Deterministic inference must not consume the sampling stream.
        assert (
            serial_policy.rng.random() == batched_policy.rng.random()
        )

    def test_empty_batch(self):
        policy = DiscretePolicy(OBS_DIM, seed=0)
        assert policy.act_batch(np.empty((0, OBS_DIM))) == []

    def test_base_policy_fallback_is_serial(self):
        calls = []

        class SerialOnly(Policy):
            observation_dim = OBS_DIM

            def act(self, observation, deterministic=False, task=None):
                calls.append(task)
                from repro.rl.policy import PolicyOutput

                return PolicyOutput(
                    action=np.zeros(2), log_prob=0.0, value=0.0
                )

        outputs = SerialOnly().act_batch(
            _observations(3, 0), tasks=["a", "b", "a"]
        )
        assert len(outputs) == 3
        assert calls == ["a", "b", "a"]

    def test_batch_then_serial_continues_the_same_stream(self):
        # Splitting one workload into a batched chunk and serial leftovers
        # must land on the same stream state as all-serial.
        observations = _observations(8, 3)
        reference = DiscretePolicy(OBS_DIM, seed=3)
        expected = [reference.act(row) for row in observations]
        split = DiscretePolicy(OBS_DIM, seed=3)
        first = split.act_batch(observations[:5])
        rest = [split.act(row) for row in observations[5:]]
        _assert_outputs_identical(expected, first + rest)


# ---------------------------------------------------------------------------
# Sharded (workers=2) rollouts keep the identity guarantee
# ---------------------------------------------------------------------------

ADD_SOURCE = """
int a[256], b[256];
int add_arrays() {
    int s = 0;
    for (int i = 0; i < 256; i++) {
        s += a[i] + b[i];
    }
    return s;
}
"""

SCALE_SOURCE = """
float x[512], y[512];
void scale() {
    for (int i = 0; i < 512; i++) {
        y[i] = 2.5f * x[i];
    }
}
"""


def _kernels():
    return [
        LoopKernel(name="add", source=ADD_SOURCE, function_name="add_arrays"),
        LoopKernel(name="scale", source=SCALE_SOURCE, function_name="scale"),
    ]


def _collect(batch_size, service=None, serial_policy=False):
    from repro.core.framework import build_embedding_model
    from repro.rl.env import VectorizationEnv, build_samples
    from repro.rl.ppo import PPOConfig, PPOTrainer

    kernels = _kernels()
    pipeline = CompileAndMeasure()
    embedding = build_embedding_model(kernels)
    samples = build_samples(kernels, embedding, pipeline)
    env = VectorizationEnv(
        samples,
        pipeline=pipeline,
        seed=0,
        shuffle=False,
        evaluation_service=service,
    )
    policy = DiscretePolicy(env.observation_dim, seed=0)
    trainer = PPOTrainer(env, policy, PPOConfig(async_chunk_size=4))
    if serial_policy:
        # Force the pre-refactor per-site path for the reference rollout.
        trainer._act_chunk = lambda entries: [
            policy.act(observation, task=task_name)
            for _, observation, task_name in entries
        ]
    return trainer.collect_batch(batch_size)


class TestShardedRolloutIdentity:
    def test_workers2_batched_rollout_matches_serial_reference(self):
        from repro.distributed import EvaluationService

        reference = _collect(12, service=None, serial_policy=True)
        with EvaluationService(CompileAndMeasure(), workers=2) as service:
            sharded = _collect(12, service=service)
        for expected, actual in zip(reference[:5], sharded[:5]):
            assert np.array_equal(expected, actual)
        assert reference[5] == sharded[5]  # task names

    def test_serial_batched_rollouts_identical_without_service(self):
        reference = _collect(10, serial_policy=True)
        batched = _collect(10)
        for expected, actual in zip(reference[:5], batched[:5]):
            assert np.array_equal(expected, actual)
        assert reference[5] == batched[5]


# ---------------------------------------------------------------------------
# Simulator whole-function memo: LRU + stats
# ---------------------------------------------------------------------------


class TestSimulatorMemo:
    def _functions(self, count):
        pipeline = CompileAndMeasure()
        functions = []
        for index in range(count):
            source = ADD_SOURCE.replace("add_arrays", f"f{index}")
            kernel = LoopKernel(
                name=f"k{index}", source=source, function_name=f"f{index}"
            )
            functions.append(pipeline.lower_kernel(kernel))
        return functions

    def test_memo_hits_and_misses_counted(self):
        function = self._functions(1)[0]
        simulator = Simulator()
        simulator.simulate(function)
        simulator.simulate(function)
        stats = simulator.memo_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction_keeps_recent_entries(self):
        functions = self._functions(4)
        simulator = Simulator()
        simulator.MAX_MEMO_ENTRIES = 2
        for function in functions:
            simulator.simulate(function)
        stats = simulator.memo_stats()
        assert stats["evictions"] == 2
        assert stats["entries"] == 2
        # The two most recent functions are still warm...
        for function in functions[2:]:
            simulator.simulate(function)
        assert simulator.memo_stats()["hits"] == 2
        # ...and re-simulating an evicted one is a miss, not an error.
        cost = simulator.simulate(functions[0])
        assert cost.total_cycles > 0
        assert simulator.memo_stats()["misses"] == 5

    def test_memoized_cost_identical_to_fresh_simulator(self):
        function = self._functions(1)[0]
        warm = Simulator()
        first = warm.simulate(function).total_cycles
        second = warm.simulate(function).total_cycles
        cold = Simulator().simulate(function).total_cycles
        assert first == second == cold

    def test_pipeline_aggregates_memo_stats(self):
        pipeline = CompileAndMeasure()
        kernel = _kernels()[0]
        pipeline.measure_baseline(kernel)
        pipeline.measure_baseline(kernel)
        totals = pipeline.simulator_memo_stats()
        assert totals["simulators"] == 1
        assert totals["hits"] >= 1
        assert totals["misses"] >= 1
        assert 0.0 < totals["hit_rate"] <= 1.0
        assert totals["playbook_entries"] >= 1

    def test_cache_stats_report_surfaces_memo_counts(self):
        from repro.core.framework import NeuroVectorizer, build_embedding_model
        from repro.agents.baseline import BaselineAgent

        kernels = _kernels()
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels)
        framework = NeuroVectorizer(
            embedding, BaselineAgent(pipeline), pipeline
        )
        framework.vectorize_kernel(kernels[0])
        rendered = framework.cache_stats_report().render()
        assert "simulator memo hits" in rendered
        assert "frontend cache hits" in rendered


# ---------------------------------------------------------------------------
# Process-wide frontend cache
# ---------------------------------------------------------------------------


class TestFrontendCache:
    def test_parse_memoizes_by_content_hash(self):
        cache = FrontendCache(capacity=8)
        first = cache.parse(ADD_SOURCE, filename="k.c")
        second = cache.parse(ADD_SOURCE, filename="k.c")
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        # A different filename (diagnostics differ) is a distinct entry.
        cache.parse(ADD_SOURCE, filename="other.c")
        assert cache.stats.misses == 2

    def test_capacity_evicts_lru(self):
        cache = FrontendCache(capacity=2)
        sources = [ADD_SOURCE.replace("256", str(n)) for n in (16, 32, 64)]
        for source in sources:
            cache.parse(source)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # Oldest entry is gone: parsing it again misses.
        cache.parse(sources[0])
        assert cache.stats.misses == 4

    def test_disable_recomputes(self):
        cache = FrontendCache(capacity=8)
        warm = cache.parse(ADD_SOURCE)
        cache.disable()
        fresh = cache.parse(ADD_SOURCE)
        assert warm is not fresh
        cache.enable()
        assert cache.parse(ADD_SOURCE) is warm

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FrontendCache(capacity=0)
        cache = FrontendCache(capacity=2)
        with pytest.raises(ValueError):
            cache.set_capacity(0)

    def test_pipelines_share_the_process_wide_store(self):
        cache = frontend_cache()
        cache.clear()
        kernel = _kernels()[0]
        CompileAndMeasure().lower_kernel(kernel)
        misses_after_first = cache.stats.misses
        CompileAndMeasure().lower_kernel(kernel)
        assert cache.stats.misses == misses_after_first
        assert cache.stats.hits >= 1

    def test_env_reconfigures_live_instance(self, monkeypatch):
        # Regression: REPRO_FRONTEND_CACHE[_CAPACITY] used to be read only
        # at first touch, so env changes after process start (including
        # between disable()/re-enable cycles) were silently ignored.
        import repro.frontend.cache as module

        monkeypatch.setattr(module, "_GLOBAL_CACHE", None)
        monkeypatch.setattr(module, "_GLOBAL_ENV", None)
        monkeypatch.setenv("REPRO_FRONTEND_CACHE_CAPACITY", "4")
        monkeypatch.delenv("REPRO_FRONTEND_CACHE", raising=False)
        cache = module.frontend_cache()
        assert cache.capacity == 4 and cache.enabled
        # A programmatic disable survives later calls while the env is
        # unchanged (env must not clobber explicit configuration).
        cache.disable()
        assert module.frontend_cache() is cache
        assert not cache.enabled
        # A capacity change applies mid-process — to the live instance,
        # not a replacement — and leaves the disabled state alone.
        monkeypatch.setenv("REPRO_FRONTEND_CACHE_CAPACITY", "9")
        assert module.frontend_cache() is cache
        assert cache.capacity == 9
        assert not cache.enabled
        cache.enable()
        # Toggling the env off applies once...
        monkeypatch.setenv("REPRO_FRONTEND_CACHE", "0")
        module.frontend_cache()
        assert not cache.enabled
        # ...but does not keep re-disabling: a programmatic re-enable
        # sticks for as long as the env value stays the same.
        cache.enable()
        module.frontend_cache()
        assert cache.enabled

    def test_loop_extraction_shares_parse_results(self):
        from repro.core.loop_extractor import extract_loops

        cache = frontend_cache()
        cache.clear()
        first = extract_loops(ADD_SOURCE, filename="k.c")
        second = extract_loops(ADD_SOURCE, filename="k.c")
        assert len(first) == 1
        # Fresh list per call, shared ExtractedLoop objects underneath.
        assert first is not second
        assert first[0] is second[0]
        assert cache.stats.hits >= 1
