"""Multi-task joint training: one shared-trunk policy, task-conditioned heads.

Pins the joint-training contract end to end:

* a ``MultiTaskPolicy`` is a shared trunk plus one head bank per task, and
  the single-task classes are its one-bank special case (seed-identical
  weights and sampling),
* joint runs are seeded-deterministic, and ``workers=2`` evaluation is
  byte-identical to serial through ``NeuroVectorizer.train``,
* updating on one task's minibatches leaves every other task's head bank
  untouched (the trunk learns jointly, the heads stay isolated),
* the single-task path (``TrainingConfig(task=...)``) still trains exactly
  as the pre-joint (seed) wiring did,
* the tune fixes: policies are shaped by the env's task menus, the grid
  sweeps ``tasks=[...]``, and the empty/malformed-grid errors are clear.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest

from repro.core.framework import (
    NeuroVectorizer,
    TrainingConfig,
    build_embedding_model,
)
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.evaluation.figures import figure_convergence
from repro.rl.env import MultiTaskEnv, VectorizationEnv, build_samples
from repro.rl.policy import (
    ContinuousPolicy,
    DiscretePolicy,
    MultiTaskPolicy,
    make_policy,
)
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.rl.spaces import ContinuousPairSpace, DiscreteFactorSpace
from repro.rl.tune import best_experiment, grid_search, run_experiments
from repro.tasks import get_task, resolve_task

JOINT_TASKS = ("vectorization", "unrolling")

REDUCTION_SOURCE = """
float a[2048], b[2048];
float work() {
    float s = 0;
    for (int i = 0; i < 2048; i++) {
        s += a[i] * b[i];
    }
    return s;
}
"""

STREAM_SOURCE = """
float x[2048], y[2048];
void scale(float alpha) {
    for (int i = 0; i < 2048; i++) {
        y[i] = alpha * x[i];
    }
}
"""


def joint_kernels():
    return [
        LoopKernel(name="work", source=REDUCTION_SOURCE, function_name="work"),
        LoopKernel(name="stream", source=STREAM_SOURCE, function_name="scale"),
    ]


def joint_config(**overrides) -> TrainingConfig:
    values = dict(
        tasks=list(JOINT_TASKS),
        rl_total_steps=48,
        rl_batch_size=24,
        learning_rate=1e-3,
        pretrain_epochs=0,
        seed=0,
    )
    values.update(overrides)
    return TrainingConfig(**values)


def history_fingerprint(history):
    return [
        (
            stats.steps_total,
            stats.reward_mean,
            tuple(sorted(stats.per_task_reward_mean.items())),
        )
        for stats in history.iterations
    ]


def parameter_snapshot(module):
    return [parameter.data.copy() for parameter in module.parameters()]


def snapshots_equal(before, after) -> bool:
    return all(np.array_equal(b, a) for b, a in zip(before, after))


# ---------------------------------------------------------------------------
# Policy: shared trunk, per-task banks, one-head special case
# ---------------------------------------------------------------------------


class TestMultiTaskPolicy:
    def two_task_spaces(self):
        return OrderedDict(
            (name, get_task(name).action_space("discrete")) for name in JOINT_TASKS
        )

    def test_single_task_classes_are_one_bank_special_cases(self):
        assert isinstance(DiscretePolicy(8), MultiTaskPolicy)
        assert isinstance(ContinuousPolicy(8), MultiTaskPolicy)

    def test_one_bank_policy_weights_match_named_construction(self):
        # The same seed builds byte-identical weights whether the bank is
        # the legacy unnamed one or a task-conditioned single entry.
        legacy = DiscretePolicy(12, seed=3)
        named = make_policy(
            "discrete", 12, seed=3,
            spaces={"vectorization": DiscreteFactorSpace()},
        )
        legacy_state = legacy.state_dict()
        named_state = named.state_dict()
        assert legacy_state.keys() == named_state.keys()
        for key in legacy_state:
            assert np.array_equal(legacy_state[key], named_state[key])

    def test_act_routes_to_the_tasks_heads(self):
        policy = make_policy("discrete", 10, spaces=self.two_task_spaces())
        observation = np.zeros(10)
        vec = policy.act(observation, deterministic=True, task="vectorization")
        unroll = policy.act(observation, deterministic=True, task="unrolling")
        assert vec.action.shape == (2,)  # (VF index, IF index)
        assert unroll.action.shape == (1,)  # one unroll-factor index

    def test_multi_task_policy_requires_a_task_id(self):
        policy = make_policy("discrete", 10, spaces=self.two_task_spaces())
        with pytest.raises(ValueError, match="task"):
            policy.act(np.zeros(10))
        with pytest.raises(ValueError, match="polly"):
            policy.act(np.zeros(10), task="polly-tiling")

    def test_single_task_policy_serves_any_task_id(self):
        # The one-head special case: a legacy unnamed policy answers
        # whatever task id the env tags observations with.
        policy = DiscretePolicy(10, seed=0)
        tagged = policy.act(np.zeros(10), deterministic=True, task="vectorization")
        plain = policy.act(np.zeros(10), deterministic=True)
        assert np.array_equal(tagged.action, plain.action)

    def test_policy_agent_over_joint_policy_needs_a_task(self):
        # Regression: an unpinned agent over a multi-bank policy must fail
        # at construction, not on its first select_factors call.
        from repro.agents.policy_agent import PolicyAgent

        policy = make_policy("discrete", 10, spaces=self.two_task_spaces())
        with pytest.raises(ValueError, match="for_task"):
            PolicyAgent(policy)
        agent = PolicyAgent(policy, task="unrolling")
        decision = agent.for_task("vectorization").select_factors(np.zeros(10))
        vec = get_task("vectorization")
        assert decision.as_tuple()[0] in vec.menus[0]

    def test_named_single_task_policy_rejects_other_tasks(self):
        policy = make_policy(
            "discrete", 10,
            spaces={"unrolling": get_task("unrolling").action_space("discrete")},
        )
        with pytest.raises(ValueError, match="vectorization"):
            policy.act(np.zeros(10), task="vectorization")

    def test_evaluate_reads_only_the_tasks_columns(self):
        policy = make_policy("discrete", 6, spaces=self.two_task_spaces())
        observations = np.zeros((4, 6))
        # Joint batches pad to the widest arity; the unrolling bank must
        # only read its own leading column.
        padded = np.zeros((4, 2))
        log_probs, entropy, values = policy.evaluate(
            observations, padded, task="unrolling"
        )
        assert log_probs.shape == (4,)
        assert values.shape == (4,)

    def test_make_policy_rejects_mixed_space_kinds(self):
        with pytest.raises(ValueError, match="continuous2"):
            make_policy(
                "continuous2", 8,
                spaces={"vectorization": DiscreteFactorSpace()},
            )
        make_policy("continuous2", 8, spaces={"vectorization": ContinuousPairSpace()})


# ---------------------------------------------------------------------------
# Environment: interleaving, tagging, per-task reward routing
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def joint_env_parts():
    kernels = joint_kernels()
    pipeline = CompileAndMeasure()
    embedding = build_embedding_model(kernels)
    tasks = [resolve_task(name) for name in JOINT_TASKS]
    samples = {
        task.name: build_samples(kernels, embedding, pipeline, task=task)
        for task in tasks
    }
    return kernels, pipeline, tasks, samples


class TestMultiTaskEnv:
    def test_interleaves_tasks_round_robin_first_epoch(self, joint_env_parts):
        _, pipeline, tasks, samples = joint_env_parts
        env = MultiTaskEnv(tasks, samples, pipeline=pipeline, seed=0)
        seen = []
        for _ in range(4):
            env.reset()
            seen.append(env.current_task_name)
            env.current_sample()  # leaves the episode open; no measuring
            env._current = None
        assert seen == ["vectorization", "unrolling", "vectorization", "unrolling"]

    def test_step_routes_rewards_through_the_right_task(self, joint_env_parts):
        _, pipeline, tasks, samples = joint_env_parts
        env = MultiTaskEnv(tasks, samples, pipeline=pipeline, seed=0)
        env.reset()
        assert env.current_task_name == "vectorization"
        result = env.step((0, 0))  # scalar (VF=1, IF=1)
        assert {"vf", "interleave"} <= set(result.info)
        env.reset()
        assert env.current_task_name == "unrolling"
        result = env.step((0,))  # unroll_count(1)
        assert "unroll" in result.info and "vf" not in result.info

    def test_cache_keys_shard_per_task(self, joint_env_parts):
        _, pipeline, tasks, samples = joint_env_parts
        env = MultiTaskEnv(tasks, samples, pipeline=pipeline, seed=0)
        requests = []
        for tagged in env.samples:
            arity = len(env.lanes[tagged.task_name].task.menus)
            requests.append((tagged, (1,) * arity))
        env.evaluate_actions_batch(requests)
        task_tags = {key.task for key in env.reward_cache._entries}
        assert set(JOINT_TASKS) <= task_tags

    def test_duplicate_or_missing_tasks_rejected(self, joint_env_parts):
        _, pipeline, tasks, samples = joint_env_parts
        with pytest.raises(ValueError, match="duplicate"):
            MultiTaskEnv(
                ["vectorization", "vectorization"], samples, pipeline=pipeline
            )
        with pytest.raises(ValueError, match="samples"):
            MultiTaskEnv(["vectorization", "polly-tiling"], samples, pipeline=pipeline)

    def test_trainer_distributes_policy_spaces_to_lanes(self, joint_env_parts):
        _, pipeline, tasks, samples = joint_env_parts
        env = MultiTaskEnv(tasks, samples, pipeline=pipeline, seed=0)
        policy = make_policy(
            "discrete",
            env.observation_dim,
            spaces=OrderedDict(
                (task.name, task.action_space("discrete")) for task in tasks
            ),
        )
        PPOTrainer(env, policy, PPOConfig())
        for name, lane in env.lanes.items():
            assert lane.action_space.menus == get_task(name).menus

    def test_single_bank_for_wrong_task_rejected(self, joint_env_parts):
        # Regression: a one-lane env must not silently adopt a bank named
        # for a *different* task (only the legacy unnamed bank passes).
        _, pipeline, tasks, samples = joint_env_parts
        env = MultiTaskEnv(
            ["vectorization"],
            {"vectorization": samples["vectorization"]},
            pipeline=pipeline,
            seed=0,
        )
        unrolling_policy = make_policy(
            "discrete", env.observation_dim,
            spaces={"unrolling": get_task("unrolling").action_space("discrete")},
        )
        with pytest.raises(ValueError, match="unrolling"):
            PPOTrainer(env, unrolling_policy, PPOConfig())
        legacy_policy = DiscretePolicy(env.observation_dim, seed=0)
        PPOTrainer(env, legacy_policy, PPOConfig())  # unnamed bank: accepted

    def test_multi_task_policy_on_single_task_env_rejected(self, joint_env_parts):
        kernels, pipeline, tasks, samples = joint_env_parts
        env = VectorizationEnv(
            samples["vectorization"], pipeline=pipeline, seed=0
        )
        policy = make_policy(
            "discrete", env.observation_dim,
            spaces=OrderedDict(
                (task.name, task.action_space("discrete")) for task in tasks
            ),
        )
        with pytest.raises(ValueError, match="MultiTaskEnv"):
            PPOTrainer(env, policy, PPOConfig())

    def test_named_bank_for_wrong_task_on_plain_env_rejected(self, joint_env_parts):
        # Regression: a single bank *named* for another task must not have
        # its space silently assigned to a VectorizationEnv running a
        # different task (same arity would decode as silent garbage).
        _, pipeline, tasks, samples = joint_env_parts
        env = VectorizationEnv(samples["vectorization"], pipeline=pipeline, seed=0)
        mismatched = make_policy(
            "discrete", env.observation_dim,
            spaces={"unrolling": get_task("unrolling").action_space("discrete")},
        )
        with pytest.raises(ValueError, match="unrolling"):
            PPOTrainer(env, mismatched, PPOConfig())
        legacy = DiscretePolicy(env.observation_dim, seed=0)
        PPOTrainer(env, legacy, PPOConfig())  # unnamed bank: accepted


# ---------------------------------------------------------------------------
# Joint training end to end
# ---------------------------------------------------------------------------


class TestJointTraining:
    @pytest.fixture(scope="class")
    def trained(self):
        kernels = joint_kernels()
        framework, artifacts = NeuroVectorizer.train(kernels, joint_config())
        yield framework, artifacts, kernels
        framework.close()

    def test_reports_per_task_reward_means(self, trained):
        _, artifacts, _ = trained
        for stats in artifacts.history.iterations:
            assert set(stats.per_task_reward_mean) == set(JOINT_TASKS)
            assert set(stats.per_task_steps) == set(JOINT_TASKS)
            weighted = sum(
                stats.per_task_reward_mean[name] * stats.per_task_steps[name]
                for name in stats.per_task_reward_mean
            ) / sum(stats.per_task_steps.values())
            assert weighted == pytest.approx(stats.reward_mean)
        assert set(artifacts.history.task_names()) == set(JOINT_TASKS)
        assert set(artifacts.samples_by_task) == set(JOINT_TASKS)

    def test_seeded_determinism(self, trained):
        _, artifacts, kernels = trained
        framework_2, artifacts_2 = NeuroVectorizer.train(kernels, joint_config())
        try:
            assert history_fingerprint(artifacts_2.history) == history_fingerprint(
                artifacts.history
            )
        finally:
            framework_2.close()

    def test_compare_agents_populated_for_every_trained_task(self, trained):
        # The acceptance bar: one joint policy, one populated table per
        # task, baseline pinned at exactly 1.0.
        framework, _, kernels = trained
        comparisons = framework.compare_all_tasks(kernels)
        assert list(comparisons) == list(JOINT_TASKS)
        for name, comparison in comparisons.items():
            assert comparison.task == name
            assert comparison.methods == ["baseline", "random", "brute_force", "rl"]
            assert set(comparison.speedups) == {"work", "stream"}
            for row in comparison.speedups.values():
                assert set(row) == set(comparison.methods)
                assert row["baseline"] == pytest.approx(1.0)
                for value in row.values():
                    assert value == value and value > 0

    def test_optimize_kernel_per_task(self, trained):
        framework, _, kernels = trained
        vec = framework.optimize_kernel(kernels[1])  # primary task
        unroll = framework.optimize_kernel(kernels[1], task="unrolling")
        assert vec.task == "vectorization"
        assert unroll.task == "unrolling"
        assert "unroll_count" in unroll.transformed_source
        with pytest.raises(ValueError, match="trained"):
            framework.optimize_kernel(kernels[1], task="polly-tiling")

    def test_compare_all_tasks_repins_explicit_agents(self, trained):
        # Regression: an explicit agents mapping containing the (primary-
        # task-pinned) framework agent must be re-pinned per table, not
        # rejected by the runner's task check on the second task.
        framework, _, kernels = trained
        comparisons = framework.compare_all_tasks(
            kernels[:1], agents={"rl": framework.agent}
        )
        assert list(comparisons) == list(JOINT_TASKS)
        for comparison in comparisons.values():
            assert comparison.methods == ["rl"]
            assert comparison.speedups["work"]["rl"] > 0

    def test_legacy_vectorize_kernel_works_on_joint_framework(self, trained):
        # Regression: the retained legacy surface must pin the agent to
        # the primary task too — a joint framework's raw PolicyAgent has
        # no task and a multi-bank policy refuses to act without one.
        framework, _, kernels = trained
        result = framework.vectorize_kernel(kernels[1])
        assert result.decisions
        vec_task = resolve_task("vectorization")
        for decision in result.decisions:
            assert decision.vf in vec_task.menus[0]
            assert decision.interleave in vec_task.menus[1]

    def test_workers_2_byte_identical_to_serial(self):
        # The acceptance bar: the joint run's evaluation sharded over two
        # worker processes changes nothing observable.
        kernels = joint_kernels()

        def run(workers):
            config = joint_config(rl_total_steps=24, rl_batch_size=12, seed=3,
                                  workers=workers)
            framework, artifacts = NeuroVectorizer.train(kernels, config)
            try:
                decisions = {
                    name: framework.decide_sites(kernels[0], task=name)
                    for name in JOINT_TASKS
                }
            finally:
                framework.close()
            return history_fingerprint(artifacts.history), decisions

        assert run(0) == run(2)

    def test_per_task_head_isolation(self, joint_env_parts):
        # Updating on one task's minibatches must leave the other task's
        # head bank byte-identical (only trunk + that task's bank move).
        # Specifically a *banks* property: the embedding-conditioned
        # default shares a head stack, so pin conditioning="banks".
        _, pipeline, tasks, samples = joint_env_parts
        env = MultiTaskEnv(tasks, samples, pipeline=pipeline, seed=0)
        policy = make_policy(
            "discrete", env.observation_dim,
            spaces=OrderedDict(
                (task.name, task.action_space("discrete")) for task in tasks
            ),
            conditioning="banks",
        )
        trainer = PPOTrainer(
            env, policy, PPOConfig(learning_rate=1e-2, minibatch_size=8)
        )
        trunk_before = parameter_snapshot(policy.trunk)
        vec_before = parameter_snapshot(policy.task_heads["vectorization"])
        unroll_before = parameter_snapshot(policy.task_heads["unrolling"])

        batch = 16
        rng = np.random.default_rng(0)
        observations = rng.normal(size=(batch, env.observation_dim))
        actions = np.zeros((batch, 2))
        log_probs = np.full(batch, -1.0)
        rewards = rng.normal(size=batch)
        values = np.zeros(batch)
        trainer.update(
            observations, actions, log_probs, rewards, values,
            task_names=["vectorization"] * batch,
        )

        assert not snapshots_equal(trunk_before, parameter_snapshot(policy.trunk))
        assert not snapshots_equal(
            vec_before, parameter_snapshot(policy.task_heads["vectorization"])
        )
        assert snapshots_equal(
            unroll_before, parameter_snapshot(policy.task_heads["unrolling"])
        )

    def test_tasks_accepts_task_objects_and_unregistered_plugins(self):
        # Regression: TrainingConfig(tasks=[...]) must accept task
        # *objects* — including unregistered custom plug-ins — exactly as
        # the single-task task= shim does, not stringify them.
        class DoublingUnroll(get_task("unrolling").__class__):
            name = "doubling-unroll"

        kernels = joint_kernels()
        config = joint_config(
            tasks=[get_task("vectorization"), DoublingUnroll()],
            rl_total_steps=12, rl_batch_size=6,
        )
        assert [task.name for task in config.resolved_tasks()] == [
            "vectorization", "doubling-unroll",
        ]
        framework, artifacts = NeuroVectorizer.train(kernels, config)
        try:
            assert set(artifacts.history.task_names()) == {
                "vectorization", "doubling-unroll",
            }
        finally:
            framework.close()
        with pytest.raises(ValueError, match="duplicate"):
            joint_config(tasks=["unrolling", get_task("unrolling")]).resolved_tasks()

    def test_single_task_config_trains_identically_to_seed_wiring(self):
        # TrainingConfig(task=...) must remain byte-identical to the
        # pre-joint single-task stage-2 wiring: VectorizationEnv +
        # make_policy(space=task menus) + PPOTrainer.
        kernels = joint_kernels()
        config = TrainingConfig(
            task="vectorization", rl_total_steps=24, rl_batch_size=12,
            learning_rate=1e-3, pretrain_epochs=0, seed=5,
        )
        framework, artifacts = NeuroVectorizer.train(kernels, config)
        try:
            new_curve = artifacts.history.reward_curve()
            new_decisions = framework.decide_sites(kernels[0])
        finally:
            framework.close()

        task = resolve_task("vectorization")
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels, config.embedding)
        samples = build_samples(kernels, embedding, pipeline, task=task)
        env = VectorizationEnv(samples, pipeline=pipeline, seed=5, task=task)
        policy = make_policy(
            "discrete", env.observation_dim, seed=5,
            space=task.action_space("discrete"),
        )
        trainer = PPOTrainer(
            env, policy,
            PPOConfig(learning_rate=1e-3, train_batch_size=12),
        )
        reference = trainer.train(24, batch_size=12)
        assert new_curve == reference.reward_curve()

        from repro.agents.policy_agent import PolicyAgent

        reference_agent = PolicyAgent(policy)
        reference_decisions = {}
        for site in task.decision_sites(kernels[0]):
            observation = task.observation_features(site, embedding)
            chosen = reference_agent.select_factors(observation)
            reference_decisions[site.index] = chosen.as_tuple()
        assert new_decisions == reference_decisions


# ---------------------------------------------------------------------------
# Tune: task-aware sweeps and guard rails
# ---------------------------------------------------------------------------


class TestTune:
    @pytest.fixture(scope="class")
    def env_factory(self):
        kernels = joint_kernels()
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels)
        tasks = {name: resolve_task(name) for name in JOINT_TASKS}
        samples = {
            name: build_samples(kernels, embedding, pipeline, task=task)
            for name, task in tasks.items()
        }

        def make_env(tasks=None):
            if not tasks:
                tasks = ("unrolling",)
            if len(tasks) == 1:
                only = resolve_task(tasks[0])
                return VectorizationEnv(
                    samples[only.name], pipeline=pipeline, seed=0, task=only
                )
            return MultiTaskEnv(
                [resolve_task(name) for name in tasks],
                samples,
                pipeline=pipeline,
                seed=0,
            )

        return make_env

    def test_policies_are_shaped_by_the_envs_task(self, env_factory):
        # The regression this PR fixes: sweeping a non-default task used to
        # silently build (VF, IF)-shaped policies.
        results = run_experiments(
            env_factory, {"policy": ["discrete", "continuous2"]}, total_steps=8,
            base_config=PPOConfig(train_batch_size=8, minibatch_size=8,
                                  epochs_per_batch=1),
        )
        unrolling = get_task("unrolling")
        for result in results:
            assert result.policy is not None
            assert result.policy.space.menus == unrolling.menus

    def test_grid_sweeps_task_combinations(self, env_factory):
        results = run_experiments(
            env_factory,
            {"tasks": [("unrolling",), ("vectorization", "unrolling")]},
            total_steps=8,
            base_config=PPOConfig(train_batch_size=8, minibatch_size=8,
                                  epochs_per_batch=1),
        )
        assert len(results) == 2
        single, joint = results
        assert set(single.history.task_names()) == {"unrolling"}
        assert set(joint.history.task_names()) == set(JOINT_TASKS)
        assert set(joint.policy.task_names) == set(JOINT_TASKS)
        best_experiment(results)  # non-empty: picks one without raising

    def test_string_task_candidates_are_single_tasks(self, env_factory):
        # Regression: {"tasks": ["vectorization", "unrolling"]} sweeps two
        # *single-task* configurations — a bare-string candidate must not
        # be exploded into per-character task names.
        results = run_experiments(
            env_factory,
            {"tasks": ["unrolling", ("vectorization", "unrolling")]},
            total_steps=8,
            base_config=PPOConfig(train_batch_size=8, minibatch_size=8,
                                  epochs_per_batch=1),
        )
        single, joint = results
        assert set(single.history.task_names()) == {"unrolling"}
        assert set(joint.history.task_names()) == set(JOINT_TASKS)

    def test_tasks_sweep_needs_a_tasks_aware_factory(self, env_factory):
        def legacy_factory():
            return env_factory()

        with pytest.raises(ValueError, match="tasks"):
            run_experiments(
                legacy_factory, {"tasks": [("unrolling",)]}, total_steps=8
            )

    def test_best_experiment_empty_raises_descriptively(self):
        with pytest.raises(ValueError, match="no experiment results"):
            best_experiment([])

    def test_grid_search_rejects_non_sequence_values(self):
        with pytest.raises(ValueError, match="learning_rate"):
            grid_search({"learning_rate": 5e-4})
        with pytest.raises(ValueError, match="policy"):
            grid_search({"policy": "discrete"})
        assert grid_search({"policy": ["discrete"]}) == [{"policy": "discrete"}]


# ---------------------------------------------------------------------------
# Convergence figure driver
# ---------------------------------------------------------------------------


class TestFigureConvergence:
    def test_from_joint_history(self):
        kernels = joint_kernels()
        framework, artifacts = NeuroVectorizer.train(kernels, joint_config())
        try:
            figure = figure_convergence(artifacts.history)
        finally:
            framework.close()
        assert figure.configurations() == ["default"]
        joint = figure.reward_curve("default")
        assert len(joint) == len(artifacts.history.iterations)
        for name in JOINT_TASKS:
            task_curve = figure.reward_curve("default", task=name)
            assert len(task_curve) == len(joint)
        rendered = figure.format_table().render()
        assert "vectorization" in rendered and "unrolling" in rendered

    def test_from_tune_results(self):
        kernels = joint_kernels()
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels)
        task = resolve_task("vectorization")
        samples = build_samples(kernels, embedding, pipeline, task=task)

        def make_env():
            return VectorizationEnv(samples, pipeline=pipeline, seed=0, task=task)

        results = run_experiments(
            make_env, {"learning_rate": [1e-3, 1e-4]}, total_steps=8,
            base_config=PPOConfig(train_batch_size=8, minibatch_size=8,
                                  epochs_per_batch=1),
        )
        figure = figure_convergence(results)
        assert len(figure.configurations()) == 2
        rendered = figure.format_table().render()
        for result in results:
            assert result.name in rendered
