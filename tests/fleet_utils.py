"""Shared helpers for the fleet-evaluation tests (repro.fleet).

The fault-injection story lives here: :class:`repro.fleet.worker.WorkerFaults`
lets a test arm a worker to die mid-batch (``die_after``), go silent while
staying connected (``drop_heartbeats_after``) or tear its coordinator
connection abruptly (``tear_after``); :func:`start_workers` /
:func:`fleet_service` wrap the boilerplate of spinning localhost workers up,
dialing them and tearing everything down even when a test kills half the
fleet on purpose.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.cache.reward_cache import RewardCache
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.distributed import EvaluationService
from repro.fleet import FleetEvaluationService, FleetWorker, WorkerFaults

ADD_SOURCE = """
int a[256], b[256];
int add_arrays() {
    int s = 0;
    for (int i = 0; i < 256; i++) {
        s += a[i] + b[i];
    }
    return s;
}
"""

SCALE_SOURCE = """
float x[512], y[512];
void scale(float alpha) {
    for (int i = 0; i < 512; i++) {
        y[i] = alpha * x[i];
    }
}
"""


def add_kernel() -> LoopKernel:
    return LoopKernel(name="add", source=ADD_SOURCE, function_name="add_arrays")


def scale_kernel() -> LoopKernel:
    return LoopKernel(name="scale", source=SCALE_SOURCE, function_name="scale")


def grid_requests(kernel, vfs=(1, 2, 4, 8), ifs=(1, 2)):
    return [(kernel, 0, vf, interleave) for vf in vfs for interleave in ifs]


def task_requests(task, kernels: Sequence[LoopKernel], site: int = 0):
    """Every action in ``task``'s joint menu, for every kernel, at one site."""
    actions: List[Tuple[int, ...]] = [()]
    for menu in task.menus:
        actions = [prefix + (choice,) for prefix in actions for choice in menu]
    return [(kernel, site, action) for kernel in kernels for action in actions]


def outcome_tuples(outcomes):
    return [(o.measurement.cycles, o.measurement.compile_seconds) for o in outcomes]


def serial_outcomes(requests, task=None):
    """Ground truth: the zero-worker in-process service's answers."""
    service = EvaluationService(CompileAndMeasure(), workers=0)
    return outcome_tuples(service.evaluate(requests, task=task))


def worker_address(worker: FleetWorker) -> str:
    host, port = worker.address
    return f"{host}:{port}"


@contextmanager
def start_workers(
    count: int = 2,
    faults: Optional[Sequence[Optional[WorkerFaults]]] = None,
    store_dir: Optional[str] = None,
) -> Iterator[List[FleetWorker]]:
    """Spin up ``count`` localhost workers, stopping whatever survives."""
    faults = list(faults or [])
    faults += [None] * (count - len(faults))
    workers = [
        FleetWorker(store_dir=store_dir, faults=fault) for fault in faults[:count]
    ]
    try:
        for worker in workers:
            worker.start()
        yield workers
    finally:
        for worker in workers:
            worker.stop()


@contextmanager
def fleet_service(
    workers: Sequence[FleetWorker],
    cache: Optional[RewardCache] = None,
    **knobs,
) -> Iterator[FleetEvaluationService]:
    """Dial an already-started fleet and close the service afterwards.

    Short heartbeats by default so loss-detection tests run in seconds;
    pass ``heartbeat_timeout``/``heartbeat_interval`` to override.
    """
    knobs.setdefault("heartbeat_interval", 0.1)
    knobs.setdefault("heartbeat_timeout", 2.0)
    service = FleetEvaluationService.connect(
        CompileAndMeasure(),
        cache if cache is not None else RewardCache(),
        addresses=[worker_address(w) for w in workers],
        **knobs,
    )
    try:
        yield service
    finally:
        service.close()
