"""Tests for the distributed evaluation subsystem (repro.distributed)."""

from __future__ import annotations

import json
import os

import pytest

from repro.cache.reward_cache import (
    CachedMeasurement,
    EvaluationBatcher,
    RewardCache,
    RewardKey,
)
from repro.core.framework import NeuroVectorizer, build_embedding_model
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.distributed import (
    DiskBackedRewardCache,
    EvaluationService,
    EvaluationServiceConfig,
    PersistentRewardStore,
)
from repro.distributed.async_api import AsyncEvaluator
from repro.distributed.store import SCHEMA_NAME
from repro.evaluation.report import Table
from repro.simulator.engine import Simulator


ADD_SOURCE = """
int a[256], b[256];
int add_arrays() {
    int s = 0;
    for (int i = 0; i < 256; i++) {
        s += a[i] + b[i];
    }
    return s;
}
"""

SCALE_SOURCE = """
float x[512], y[512];
void scale(float alpha) {
    for (int i = 0; i < 512; i++) {
        y[i] = alpha * x[i];
    }
}
"""


def add_kernel() -> LoopKernel:
    return LoopKernel(name="add", source=ADD_SOURCE, function_name="add_arrays")


def scale_kernel() -> LoopKernel:
    return LoopKernel(name="scale", source=SCALE_SOURCE, function_name="scale")


def sample_key(index: int = 0) -> RewardKey:
    return RewardKey(
        kernel_hash=f"kernel{index:02d}" + "0" * 32,
        machine_hash="machine" + "0" * 33,
        loop_index=0,
        vf=4,
        interleave=2,
    )


def grid_requests(kernel, vfs=(1, 2, 4, 8), ifs=(1, 2)):
    return [(kernel, 0, vf, interleave) for vf in vfs for interleave in ifs]


def outcome_tuples(outcomes):
    return [(o.measurement.cycles, o.measurement.compile_seconds) for o in outcomes]


# ---------------------------------------------------------------------------
# PersistentRewardStore
# ---------------------------------------------------------------------------


class TestPersistentRewardStore:
    def test_round_trip(self, tmp_path):
        store = PersistentRewardStore(str(tmp_path))
        entries = {
            sample_key(i): CachedMeasurement(cycles=100.0 + i, compile_seconds=0.5 * i)
            for i in range(5)
        }
        for key, measurement in entries.items():
            store.append(key, measurement)
        store.close()

        reloaded = PersistentRewardStore(str(tmp_path)).load()
        assert reloaded == entries

    def test_segment_has_schema_header(self, tmp_path):
        store = PersistentRewardStore(str(tmp_path))
        store.append(sample_key(), CachedMeasurement(1.0, 0.1))
        store.close()
        with open(store.segment_path, encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["schema"] == SCHEMA_NAME
        assert isinstance(header["version"], int)

    def test_truncated_tail_is_tolerated(self, tmp_path):
        store = PersistentRewardStore(str(tmp_path))
        good = {sample_key(i): CachedMeasurement(float(i), 0.0) for i in range(3)}
        for key, measurement in good.items():
            store.append(key, measurement)
        store.close()
        # Simulate a crash mid-append: a torn, incomplete final record.
        with open(store.segment_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": ["deadbeef", "mach')

        fresh = PersistentRewardStore(str(tmp_path))
        assert fresh.load() == good
        assert fresh.stats.corrupt_records == 1
        assert fresh.stats.records_loaded == 3

    def test_corrupt_middle_record_skipped(self, tmp_path):
        store = PersistentRewardStore(str(tmp_path))
        store.append(sample_key(0), CachedMeasurement(1.0, 0.0))
        store.close()
        with open(store.segment_path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"key": [1, 2], "cycles": 3}\n')
        second = PersistentRewardStore(str(tmp_path))
        second.append(sample_key(1), CachedMeasurement(2.0, 0.0))
        second.close()

        fresh = PersistentRewardStore(str(tmp_path))
        loaded = fresh.load()
        assert len(loaded) == 2
        assert fresh.stats.corrupt_records == 2

    def test_incompatible_version_segment_skipped(self, tmp_path):
        path = os.path.join(str(tmp_path), "segment-future.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"schema": SCHEMA_NAME, "version": 999}) + "\n")
            handle.write('{"key": ["a","b",0,1,1,256], "cycles": 1.0, "compile_seconds": 0}\n')
        store = PersistentRewardStore(str(tmp_path))
        assert store.load() == {}
        assert store.stats.segments_skipped == 1

    def test_headerless_segment_skipped(self, tmp_path):
        path = os.path.join(str(tmp_path), "segment-junk.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage\n")
        store = PersistentRewardStore(str(tmp_path))
        assert store.load() == {}
        assert store.stats.segments_skipped == 1

    def test_concurrent_writers_merge_instead_of_clobbering(self, tmp_path):
        first = PersistentRewardStore(str(tmp_path))
        second = PersistentRewardStore(str(tmp_path))
        assert first.segment_path != second.segment_path
        first.append(sample_key(0), CachedMeasurement(1.0, 0.0))
        second.append(sample_key(1), CachedMeasurement(2.0, 0.0))
        first.close()
        second.close()

        merged = PersistentRewardStore(str(tmp_path)).load()
        assert set(merged) == {sample_key(0), sample_key(1)}

    def test_later_record_wins_within_one_segment(self, tmp_path):
        store = PersistentRewardStore(str(tmp_path))
        store.append(sample_key(), CachedMeasurement(1.0, 0.0))
        store.append(sample_key(), CachedMeasurement(2.0, 0.0))
        store.close()
        merged = PersistentRewardStore(str(tmp_path)).load()
        assert merged[sample_key()].cycles == 2.0

    def test_compact_merges_segments_without_touching_stats(self, tmp_path):
        for index in range(3):
            store = PersistentRewardStore(str(tmp_path))
            store.append(sample_key(index), CachedMeasurement(float(index), 0.0))
            store.close()
        compactor = PersistentRewardStore(str(tmp_path))
        stats_before = compactor.stats.as_dict()
        count = compactor.compact()
        assert count == 3
        assert len(compactor.segment_paths()) == 1
        assert len(PersistentRewardStore(str(tmp_path)).load()) == 3
        # compact() reuses load() internally but must not inflate the
        # warm-start bookkeeping.
        assert compactor.stats.as_dict() == stats_before


# ---------------------------------------------------------------------------
# DiskBackedRewardCache
# ---------------------------------------------------------------------------


class TestDiskBackedRewardCache:
    def test_put_persists_and_second_cache_preloads(self, tmp_path):
        cache = DiskBackedRewardCache.open(str(tmp_path))
        cache.put(sample_key(), CachedMeasurement(42.0, 0.25))
        cache.close()

        warm = DiskBackedRewardCache.open(str(tmp_path))
        assert warm.preloaded == 1
        assert warm.peek(sample_key()) == CachedMeasurement(42.0, 0.25)

    def test_unchanged_put_is_not_reappended(self, tmp_path):
        cache = DiskBackedRewardCache.open(str(tmp_path))
        measurement = CachedMeasurement(42.0, 0.25)
        cache.put(sample_key(), measurement)
        cache.put(sample_key(), measurement)
        assert cache.store.stats.appended == 1
        cache.put(sample_key(), CachedMeasurement(43.0, 0.25))
        assert cache.store.stats.appended == 2
        cache.close()

    def test_eviction_does_not_lose_disk_entries(self, tmp_path):
        cache = DiskBackedRewardCache.open(str(tmp_path), max_entries=2)
        for index in range(4):
            cache.put(sample_key(index), CachedMeasurement(float(index), 0.0))
        assert len(cache) == 2
        cache.close()
        warm = DiskBackedRewardCache.open(str(tmp_path))
        assert warm.preloaded == 4

    def test_reputting_evicted_key_does_not_duplicate_records(self, tmp_path):
        # A bounded cache re-measures evicted keys; the (deterministic)
        # identical result must not grow the segment file.
        cache = DiskBackedRewardCache.open(str(tmp_path), max_entries=2)
        for index in range(4):
            cache.put(sample_key(index), CachedMeasurement(float(index), 0.0))
        assert cache.peek(sample_key(0)) is None  # evicted from memory
        cache.put(sample_key(0), CachedMeasurement(0.0, 0.0))
        assert cache.store.stats.appended == 4
        cache.close()

    def test_measure_through_cache_persists(self, tmp_path):
        pipeline = CompileAndMeasure()
        cache = DiskBackedRewardCache.open(str(tmp_path))
        measurement, was_hit = cache.measure(pipeline, add_kernel(), 0, 4, 2)
        assert not was_hit
        cache.close()

        warm = DiskBackedRewardCache.open(str(tmp_path))
        cached, was_hit = warm.measure(CompileAndMeasure(), add_kernel(), 0, 4, 2)
        assert was_hit
        assert cached == measurement


# ---------------------------------------------------------------------------
# EvaluationService
# ---------------------------------------------------------------------------


class TestEvaluationService:
    def test_serial_matches_plain_batcher(self):
        requests = grid_requests(add_kernel())
        batcher_cache = RewardCache()
        batcher = EvaluationBatcher(CompileAndMeasure(), batcher_cache)
        for kernel, loop_index, vf, interleave in requests:
            batcher.add(kernel, loop_index, vf, interleave)
        expected = outcome_tuples(batcher.flush())

        service = EvaluationService(CompileAndMeasure(), workers=0)
        assert outcome_tuples(service.evaluate(requests)) == expected
        assert service.stats.serial_batches == 1
        assert service.stats.dispatched == 0

    def test_sharded_workers_match_serial(self):
        requests = grid_requests(add_kernel()) + grid_requests(scale_kernel())
        serial = outcome_tuples(EvaluationService(CompileAndMeasure(), workers=0).evaluate(requests))
        with EvaluationService(CompileAndMeasure(), workers=2) as service:
            parallel = outcome_tuples(service.evaluate(requests))
            assert parallel == serial
            assert service.stats.completed == len(requests)
            assert sum(service.stats.per_worker_completed.values()) == len(requests)

    def test_unrolling_payloads_shard_identically_to_serial(self):
        # One-dimensional task actions travel the same WorkRequest payload
        # path as (VF, IF) pairs: workers resolve "unrolling" from the
        # registry and must answer byte-identically to the serial batcher.
        from repro.tasks import get_task

        task = get_task("unrolling")
        requests = [
            (kernel, site, (unroll,))
            for kernel in (add_kernel(), scale_kernel())
            for site in (0,)
            for unroll in task.menus[0]
        ]
        serial = outcome_tuples(
            EvaluationService(CompileAndMeasure(), workers=0).evaluate(
                requests, task=task
            )
        )
        with EvaluationService(CompileAndMeasure(), workers=2) as service:
            parallel = outcome_tuples(service.evaluate(requests, task=task))
        assert parallel == serial

    def test_second_evaluation_is_all_cache_hits(self):
        requests = grid_requests(add_kernel())
        with EvaluationService(CompileAndMeasure(), workers=1) as service:
            service.evaluate(requests)
            dispatched = service.stats.dispatched
            outcomes = service.evaluate(requests)
            assert all(outcome.was_cached for outcome in outcomes)
            assert service.stats.dispatched == dispatched

    def test_in_flight_deduplication_across_futures(self):
        requests = grid_requests(add_kernel())
        with EvaluationService(CompileAndMeasure(), workers=1) as service:
            first = service.submit(requests)
            second = service.submit(requests)  # identical, still in flight
            assert service.stats.dispatched == len(requests)
            assert outcome_tuples(first.result()) == outcome_tuples(second.result())
            assert all(outcome.was_cached for outcome in second.result())

    def test_worker_failure_surfaces_as_error(self):
        broken = LoopKernel(
            name="broken", source="int f() { return 0; }", function_name="missing"
        )
        with EvaluationService(CompileAndMeasure(), workers=1) as service:
            future = service.submit([(broken, 0, 4, 1)])
            with pytest.raises(RuntimeError, match="failed in workers"):
                future.result()
            assert service.stats.errors == 1

    def test_from_config_builds_disk_backed_cache(self, tmp_path):
        config = EvaluationServiceConfig(workers=0, cache_dir=str(tmp_path))
        service = EvaluationService.from_config(CompileAndMeasure(), config)
        assert isinstance(service.cache, DiskBackedRewardCache)
        service.evaluate(grid_requests(add_kernel()))
        assert service.cache.store.stats.appended > 0
        service.cache.close()

    def test_mismatched_consumer_is_rejected(self):
        from repro.cache.reward_cache import evaluate_requests
        from repro.machine.description import MachineDescription

        service = EvaluationService(CompileAndMeasure(), workers=0)
        with pytest.raises(ValueError, match="different RewardCache"):
            evaluate_requests(
                service.pipeline,
                RewardCache(),
                grid_requests(add_kernel()),
                service=service,
            )
        other_machine = MachineDescription(vector_bits=512)
        with pytest.raises(ValueError, match="machine model"):
            evaluate_requests(
                CompileAndMeasure(machine=other_machine),
                service.cache,
                grid_requests(add_kernel()),
                service=service,
            )

    def test_service_only_agent_without_pipeline_works(self):
        # Regression: a best-of-N random-search agent wired only to a
        # service (no in-process pipeline) must evaluate via the service,
        # not crash on the consistency check.
        from repro.agents.random_search import RandomSearchAgent
        import numpy as np

        with EvaluationService(CompileAndMeasure(), workers=0) as service:
            agent = RandomSearchAgent(seed=2, candidates=3, evaluation_service=service)
            decision = agent.select_factors(np.zeros(2), kernel=add_kernel(), loop_index=0)
            assert service.stats.serial_requests == 3
            assert decision.vf >= 1

    def test_submit_after_close_raises_clearly(self):
        service = EvaluationService(CompileAndMeasure(), workers=1)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(grid_requests(add_kernel()))

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            EvaluationService(CompileAndMeasure(), workers=-1)
        with pytest.raises(ValueError):
            EvaluationServiceConfig(workers=-1)


# ---------------------------------------------------------------------------
# AsyncEvaluator overlap
# ---------------------------------------------------------------------------


class TestAsyncEvaluator:
    @staticmethod
    def _env(service=None, pipeline=None):
        from repro.rl.env import VectorizationEnv, build_samples

        kernels = [add_kernel(), scale_kernel()]
        embedding = build_embedding_model(kernels)
        pipeline = pipeline or CompileAndMeasure()
        samples = build_samples(kernels, embedding, pipeline)
        return VectorizationEnv(
            samples,
            pipeline=pipeline,
            seed=0,
            shuffle=False,
            evaluation_service=service,
        )

    def test_overlapped_submission_matches_synchronous_path(self):
        sync_env = self._env()
        pairs = [(sample, (2, 1)) for sample in sync_env.samples]
        expected = [step.reward for step in sync_env.evaluate_batch(pairs)]

        pipeline = CompileAndMeasure()
        with EvaluationService(pipeline, workers=2) as service:
            async_env = self._env(service=service, pipeline=pipeline)
            evaluator = AsyncEvaluator(async_env)
            assert evaluator.overlapping
            futures = [
                evaluator.submit([(sample, (2, 1))]) for sample in async_env.samples
            ]
            rewards = [step.reward for future in futures for step in future.result()]
        assert rewards == expected
        assert async_env.total_steps == len(pairs)

    def test_serial_fallback_is_lazy_but_equivalent(self):
        env = self._env()
        evaluator = AsyncEvaluator(env)
        assert not evaluator.overlapping
        future = evaluator.submit([(env.samples[0], (2, 1))])
        assert not future.done()
        (step,) = future.result()
        reference_env = self._env()
        (reference,) = reference_env.evaluate_batch([(reference_env.samples[0], (2, 1))])
        assert step.reward == reference.reward


# ---------------------------------------------------------------------------
# Framework integration: warm start + stats guards
# ---------------------------------------------------------------------------


class TestFrameworkWarmStart:
    def test_second_run_performs_zero_simulator_invocations(self, tmp_path, monkeypatch):
        from repro.agents.brute_force import BruteForceAgent

        kernels = [add_kernel(), scale_kernel()]
        embedding = build_embedding_model(kernels)

        def run(count_calls: bool):
            pipeline = CompileAndMeasure()
            cache = DiskBackedRewardCache.open(str(tmp_path))
            agent = BruteForceAgent(pipeline, reward_cache=cache)
            framework = NeuroVectorizer(
                embedding, agent, pipeline, reward_cache=cache
            )
            calls = {"n": 0}
            if count_calls:
                original = Simulator.simulate

                def counting(self, *args, **kwargs):
                    calls["n"] += 1
                    return original(self, *args, **kwargs)

                monkeypatch.setattr(Simulator, "simulate", counting)
            results = framework.vectorize_suite(kernels)
            framework.close()
            if count_calls:
                monkeypatch.undo()
            return results, calls["n"]

        cold_results, _ = run(count_calls=False)
        warm_results, simulator_calls = run(count_calls=True)

        assert simulator_calls == 0
        assert [r.cycles for r in warm_results] == [r.cycles for r in cold_results]
        assert [r.baseline_cycles for r in warm_results] == [
            r.baseline_cycles for r in cold_results
        ]
        assert [
            [(d.vf, d.interleave) for d in r.decisions] for r in warm_results
        ] == [[(d.vf, d.interleave) for d in r.decisions] for r in cold_results]


class TestFrameworkStatsReports:
    @staticmethod
    def _framework(**kwargs) -> NeuroVectorizer:
        kernels = [add_kernel()]
        embedding = build_embedding_model(kernels)
        from repro.agents.baseline import BaselineAgent

        pipeline = CompileAndMeasure()
        return NeuroVectorizer(embedding, BaselineAgent(pipeline), pipeline, **kwargs)

    def test_cache_stats_report_before_any_evaluation(self):
        framework = self._framework()
        report = framework.cache_stats_report()
        assert isinstance(report, Table)
        rendered = report.render()
        assert "no evaluations" in rendered

    def test_cache_stats_report_after_evaluation(self):
        framework = self._framework()
        framework.vectorize_kernel(add_kernel())
        rendered = framework.cache_stats_report().render()
        assert "no evaluations" not in rendered
        assert "hit rate" in rendered

    def test_service_stats_report_without_service_is_none(self):
        assert self._framework().service_stats_report() is None

    def test_service_stats_report_with_store(self, tmp_path):
        pipeline = CompileAndMeasure()
        cache = DiskBackedRewardCache.open(str(tmp_path))
        service = EvaluationService(pipeline, cache, workers=0)
        framework = self._framework(evaluation_service=service)
        service.evaluate(grid_requests(add_kernel()))
        rendered = framework.service_stats_report().render()
        assert "serial batches" in rendered
        assert "store: records appended" in rendered
        framework.close()
