"""Vectorizer legality, planning, baseline cost model and brute-force tests."""

import pytest

from repro.analysis.loopinfo import analyze_loop
from repro.frontend import parse_source
from repro.ir.lowering import lower_unit
from repro.machine.description import MachineDescription
from repro.simulator.engine import Simulator
from repro.vectorizer.bruteforce import brute_force_search
from repro.vectorizer.cost_model import BaselineCostModel
from repro.vectorizer.legality import check_legality
from repro.vectorizer.planner import build_plan, make_loop_plan, plan_from_pragmas


def _ir(source, name=None):
    functions = lower_unit(parse_source(source))
    return next(iter(functions.values())) if name is None else functions[name]


def _legality(source, machine=None):
    function = _ir(source)
    loop = function.innermost_loops()[0]
    return check_legality(analyze_loop(function, loop), machine or MachineDescription())


class TestLegality:
    def test_simple_loop_fully_vectorizable(self):
        legality = _legality(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = b[i]; }"
        )
        assert legality.can_vectorize
        assert legality.max_vf == 64

    def test_carried_dependence_caps_vf(self):
        legality = _legality(
            "float a[64];\nvoid f() { for (int i = 8; i < 64; i++) a[i] = a[i-8] * 2; }"
        )
        assert legality.max_vf == 8

    def test_early_exit_blocks(self):
        legality = _legality(
            "int a[64];\nint f() { for (int i = 0; i < 64; i++) { if (a[i]) return i; } return -1; }"
        )
        assert not legality.can_vectorize
        assert legality.blocked_reasons

    def test_opaque_call_blocks(self):
        legality = _legality(
            "int a[64];\nvoid f() { for (int i = 0; i < 64; i++) handle(a[i]); }"
        )
        assert not legality.can_vectorize

    def test_scalar_recurrence_blocks(self):
        legality = _legality(
            "float a[64], b[64];\nvoid f() { float c = 0;"
            " for (int i = 0; i < 64; i++) { c = a[i] - c; b[i] = c; } }"
        )
        assert not legality.can_vectorize

    def test_predicate_requires_if_conversion(self):
        legality = _legality(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++)"
            " { if (a[i] > 0) { b[i] = a[i]; } } }"
        )
        assert legality.can_vectorize
        assert legality.needs_if_conversion

    def test_unknown_trip_needs_runtime_check(self):
        legality = _legality(
            "void f(float *a, int n) { for (int i = 0; i < n; i++) a[i] = 1; }"
        )
        assert legality.needs_runtime_trip_check

    def test_pointer_params_need_alias_checks(self):
        legality = _legality(
            "void f(float *a, float *b) { for (int i = 0; i < 64; i++) a[i] = b[i]; }"
        )
        assert legality.needs_alias_checks
        assert legality.alias_check_count == 1

    def test_global_arrays_need_no_alias_checks(self):
        legality = _legality(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = b[i]; }"
        )
        assert not legality.needs_alias_checks

    def test_clamp_vf_power_of_two(self):
        legality = _legality(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = b[i]; }"
        )
        assert legality.clamp_vf(6) == 4
        assert legality.clamp_vf(64) == 64
        assert legality.clamp_vf(1) == 1

    def test_describe_text(self):
        legality = _legality(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = b[i]; }"
        )
        assert "vectorizable" in legality.describe()


class TestPlanner:
    SOURCE = "float a[4096], b[4096];\nvoid f() { for (int i = 0; i < 4096; i++) a[i] = b[i]; }"

    def test_requested_factors_clamped_to_legal(self, machine):
        function = _ir(
            "float a[64];\nvoid f() { for (int i = 4; i < 64; i++) a[i] = a[i-4]; }"
        )
        loop = function.innermost_loops()[0]
        plan = make_loop_plan(function, loop, requested_vf=64, requested_interleave=4, machine=machine)
        assert plan.requested_vf == 64
        assert plan.vf == 4  # legality cap

    def test_illegal_loop_falls_back_to_scalar(self, machine):
        function = _ir(
            "int a[64];\nvoid f() { for (int i = 0; i < 64; i++) { if (a[i]) break; a[i] = 1; } }"
        )
        loop = function.innermost_loops()[0]
        plan = make_loop_plan(function, loop, 16, 4, machine)
        assert plan.vf == 1

    def test_interleave_clamped_to_machine_max(self, machine):
        function = _ir(self.SOURCE)
        loop = function.innermost_loops()[0]
        plan = make_loop_plan(function, loop, 8, 1024, machine)
        assert plan.interleave == machine.max_interleave

    def test_non_power_of_two_request_rounded_down(self, machine):
        function = _ir(self.SOURCE)
        loop = function.innermost_loops()[0]
        plan = make_loop_plan(function, loop, 6, 3, machine)
        assert plan.vf == 4
        assert plan.interleave == 2

    def test_build_plan_defaults_missing_loops_to_scalar(self, machine):
        function = _ir(self.SOURCE)
        plan = build_plan(function, {}, machine)
        loop_plan = list(plan.plans.values())[0]
        assert loop_plan.vf == 1 and loop_plan.interleave == 1

    def test_plan_from_pragmas(self, machine):
        function = _ir(
            "float a[4096];\nvoid f() {\n"
            "#pragma clang loop vectorize_width(16) interleave_count(4)\n"
            "for (int i = 0; i < 4096; i++) a[i] = 1; }"
        )
        plan = plan_from_pragmas(function, machine)
        loop_plan = list(plan.plans.values())[0]
        assert (loop_plan.vf, loop_plan.interleave) == (16, 4)

    def test_plan_from_disable_pragma(self, machine):
        function = _ir(
            "float a[4096];\nvoid f() {\n"
            "#pragma clang loop vectorize(disable)\n"
            "for (int i = 0; i < 4096; i++) a[i] = 1; }"
        )
        plan = plan_from_pragmas(function, machine, default_vf=8)
        loop_plan = list(plan.plans.values())[0]
        assert loop_plan.vf == 1

    def test_factors_helper(self, machine):
        function = _ir(self.SOURCE)
        loop = function.innermost_loops()[0]
        plan = build_plan(function, {loop.loop_id: (8, 2)}, machine)
        assert plan.factors()[loop.loop_id] == (8, 2)


class TestBaselineCostModel:
    def test_dot_product_matches_paper_choice(self, machine):
        function = _ir(
            "int vec[512] __attribute__((aligned(16)));\n"
            "int f() { int s = 0; for (int i = 0; i < 512; i++) s += vec[i] * vec[i]; return s; }"
        )
        decision = BaselineCostModel(machine=machine).decide_loop(
            function, function.innermost_loops()[0]
        )
        # The paper reports the baseline choosing (VF=4, IF=2) for this kernel.
        assert (decision.vf, decision.interleave) == (4, 2)

    def test_baseline_never_exceeds_preferred_width(self, machine):
        function = _ir(
            "double a[4096], b[4096];\nvoid f() { for (int i = 0; i < 4096; i++) a[i] = b[i]; }"
        )
        decision = BaselineCostModel(machine=machine).decide_loop(
            function, function.innermost_loops()[0]
        )
        assert decision.vf <= 128 // 64

    def test_baseline_respects_legality(self, machine):
        function = _ir(
            "float a[64];\nvoid f() { for (int i = 1; i < 64; i++) a[i] = a[i-1]; }"
        )
        decision = BaselineCostModel(machine=machine).decide_loop(
            function, function.innermost_loops()[0]
        )
        assert decision.vf == 1

    def test_baseline_avoids_interleaving_tiny_loops(self, machine):
        function = _ir(
            "int a[8], b[8];\nvoid f() { for (int i = 0; i < 8; i++) a[i] = b[i]; }"
        )
        decision = BaselineCostModel(machine=machine).decide_loop(
            function, function.innermost_loops()[0]
        )
        assert decision.vf * decision.interleave <= 8

    def test_decide_function_covers_all_loops(self, machine):
        function = _ir(
            "float a[64], b[64];\nvoid f() {"
            " for (int i = 0; i < 64; i++) a[i] = 1;"
            " for (int j = 0; j < 64; j++) b[j] = 2; }"
        )
        decisions = BaselineCostModel(machine=machine).decide_function(function)
        assert len(decisions) == 2

    def test_cost_per_lane_recorded(self, machine):
        function = _ir(
            "float a[4096], b[4096];\nvoid f() { for (int i = 0; i < 4096; i++) a[i] = b[i]; }"
        )
        decision = BaselineCostModel(machine=machine).decide_loop(
            function, function.innermost_loops()[0]
        )
        assert 1 in decision.cost_per_lane
        assert decision.cost_per_lane[1] > 0


class TestBruteForce:
    def test_brute_force_beats_or_matches_baseline(self, machine):
        function = _ir(
            "float a[4096], b[4096];\nfloat f() { float s = 0;"
            " for (int i = 0; i < 4096; i++) s += a[i] * b[i]; return s; }"
        )
        result = brute_force_search(function, machine=machine)
        assert result.best_cycles <= result.baseline_cycles
        assert result.speedup_over_baseline() >= 1.0

    def test_grid_covers_all_35_pairs(self, machine):
        function = _ir(
            "float a[512];\nvoid f() { for (int i = 0; i < 512; i++) a[i] = 1; }"
        )
        result = brute_force_search(function, machine=machine)
        loop = function.innermost_loops()[0]
        assert len(result.grids[loop.loop_id]) == 35

    def test_best_factors_are_in_the_menu(self, machine):
        function = _ir(
            "float a[512];\nvoid f() { for (int i = 0; i < 512; i++) a[i] = a[i] * 2; }"
        )
        result = brute_force_search(function, machine=machine)
        vf, interleave = list(result.best_factors.values())[0]
        assert vf in machine.vf_candidates()
        assert interleave in machine.if_candidates()

    def test_multi_loop_search_is_per_loop(self, machine):
        function = _ir(
            "float a[512], b[512];\nvoid f() {"
            " for (int i = 0; i < 512; i++) a[i] = 1;"
            " for (int j = 0; j < 512; j++) b[j] = 2; }"
        )
        result = brute_force_search(function, machine=machine)
        assert len(result.best_factors) == 2
        assert result.evaluations == 2 * 35

    def test_restricted_candidate_lists(self, machine):
        function = _ir(
            "float a[512];\nvoid f() { for (int i = 0; i < 512; i++) a[i] = 1; }"
        )
        result = brute_force_search(
            function, machine=machine, vf_candidates=(1, 8), if_candidates=(1, 2)
        )
        loop = function.innermost_loops()[0]
        assert len(result.grids[loop.loop_id]) == 4
