"""Lexer tests."""

import pytest

from repro.frontend.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo")
        assert tokens[0].kind == TokenKind.KEYWORD
        assert tokens[0].text == "int"
        assert tokens[1].kind == TokenKind.IDENTIFIER
        assert tokens[1].text == "foo"

    def test_eof_is_last(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == TokenKind.EOF

    def test_empty_source_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == TokenKind.EOF

    def test_underscore_identifier(self):
        tokens = tokenize("__attribute__ _x x_1")
        assert tokens[0].kind == TokenKind.KEYWORD
        assert tokens[1].text == "_x"
        assert tokens[2].text == "x_1"

    def test_whitespace_is_skipped(self):
        assert texts("a\t \n b") == ["a", "b"]


class TestNumbers:
    def test_decimal_integer(self):
        token = tokenize("1234")[0]
        assert token.kind == TokenKind.INT_LITERAL
        assert token.value == 1234

    def test_hex_integer(self):
        token = tokenize("0xFF")[0]
        assert token.kind == TokenKind.INT_LITERAL
        assert token.value == 255

    def test_integer_suffixes_ignored(self):
        token = tokenize("10UL")[0]
        assert token.value == 10

    def test_float_literal(self):
        token = tokenize("3.5")[0]
        assert token.kind == TokenKind.FLOAT_LITERAL
        assert token.value == pytest.approx(3.5)

    def test_float_with_exponent(self):
        token = tokenize("1e3")[0]
        assert token.kind == TokenKind.FLOAT_LITERAL
        assert token.value == pytest.approx(1000.0)

    def test_float_with_f_suffix(self):
        token = tokenize("0.25f")[0]
        assert token.kind == TokenKind.FLOAT_LITERAL
        assert token.value == pytest.approx(0.25)

    def test_leading_dot_float(self):
        token = tokenize(".5")[0]
        assert token.kind == TokenKind.FLOAT_LITERAL
        assert token.value == pytest.approx(0.5)


class TestOperators:
    @pytest.mark.parametrize(
        "source, kind",
        [
            ("+", TokenKind.PLUS),
            ("-", TokenKind.MINUS),
            ("*", TokenKind.STAR),
            ("/", TokenKind.SLASH),
            ("%", TokenKind.PERCENT),
            ("<<", TokenKind.SHL),
            (">>", TokenKind.SHR),
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("==", TokenKind.EQ),
            ("!=", TokenKind.NE),
            ("&&", TokenKind.LOGICAL_AND),
            ("||", TokenKind.LOGICAL_OR),
            ("+=", TokenKind.PLUS_ASSIGN),
            ("-=", TokenKind.MINUS_ASSIGN),
            ("*=", TokenKind.STAR_ASSIGN),
            ("++", TokenKind.INCREMENT),
            ("--", TokenKind.DECREMENT),
            ("<<=", TokenKind.SHL_ASSIGN),
        ],
    )
    def test_operator_kinds(self, source, kind):
        assert tokenize(source)[0].kind == kind

    def test_maximal_munch(self):
        # '+++' lexes as '++' then '+'.
        tokens = tokenize("a+++b")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.IDENTIFIER,
            TokenKind.INCREMENT,
            TokenKind.PLUS,
            TokenKind.IDENTIFIER,
        ]

    def test_brackets_and_punctuation(self):
        assert kinds("a[i];")[:5] == [
            TokenKind.IDENTIFIER,
            TokenKind.LBRACKET,
            TokenKind.IDENTIFIER,
            TokenKind.RBRACKET,
            TokenKind.SEMICOLON,
        ]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestLiterals:
    def test_char_literal(self):
        token = tokenize("'A'")[0]
        assert token.kind == TokenKind.CHAR_LITERAL
        assert token.value == 65

    def test_char_escape(self):
        token = tokenize(r"'\n'")[0]
        assert token.value == 10

    def test_string_literal(self):
        token = tokenize('"hello"')[0]
        assert token.kind == TokenKind.STRING_LITERAL
        assert token.value == "hello"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_propagates(self):
        tokens = tokenize("x", filename="kernel.c")
        assert tokens[0].location.filename == "kernel.c"


class TestPragmaMarker:
    def test_pragma_marker_round_trip(self):
        from repro.frontend.preprocessor import preprocess

        text, _ = preprocess("#pragma clang loop vectorize_width(4)\nint x;")
        tokens = tokenize(text)
        assert tokens[0].kind == TokenKind.PRAGMA
        assert "vectorize_width(4)" in tokens[0].value
