"""Polyhedral substrate tests: polytopes, SCoP detection, tiling, fusion."""

import pytest

from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.frontend import parse_source
from repro.ir.lowering import lower_unit
from repro.ir.verifier import verify_function
from repro.polly.optimizer import PollyConfig, PollyOptimizer
from repro.polly.polytope import constraints_from_loop
from repro.polly.scop import detect_scop, function_scops
from repro.polly.transforms import clone_function, fuse_adjacent_loops, strip_mine, tile_loop_nest


def _ir(source, name=None):
    functions = lower_unit(parse_source(source))
    return next(iter(functions.values())) if name is None else functions[name]


GEMM = """
float A[256][256], B[256][256], C[256][256];
void gemm(float alpha) {
    for (int i = 0; i < 256; i++) {
        for (int j = 0; j < 256; j++) {
            float acc = 0;
            for (int k = 0; k < 256; k++) {
                acc += alpha * A[i][k] * B[k][j];
            }
            C[i][j] = acc;
        }
    }
}
"""


class TestPolytope:
    def test_rectangular_domain(self):
        ir = _ir(
            "float G[8][4];\nvoid f(float x) { for (int i = 0; i < 8; i++)"
            " for (int j = 0; j < 4; j++) G[i][j] = x; }"
        )
        outer = ir.top_level_loops()[0]
        inner = ir.innermost_loops()[0]
        domain = constraints_from_loop(inner, enclosing=[outer])
        assert domain.variables == ["i", "j"]
        assert domain.count_points() == 32

    def test_membership(self):
        ir = _ir("float a[10];\nvoid f() { for (int i = 2; i < 10; i++) a[i] = 1; }")
        domain = constraints_from_loop(ir.innermost_loops()[0])
        assert domain.contains({"i": 2})
        assert domain.contains({"i": 9})
        assert not domain.contains({"i": 10})
        assert not domain.contains({"i": 1})

    def test_triangular_domain(self):
        ir = _ir(
            "float G[8][8];\nvoid f(float x) { for (int i = 0; i < 8; i++)"
            " for (int j = 0; j < i; j++) G[i][j] = x; }"
        )
        outer = ir.top_level_loops()[0]
        inner = ir.innermost_loops()[0]
        domain = constraints_from_loop(inner, enclosing=[outer])
        assert domain.count_points() == 28  # 0+1+...+7

    def test_single_loop_point_count_matches_trip(self):
        ir = _ir("float a[100];\nvoid f() { for (int i = 0; i < 100; i++) a[i] = 1; }")
        domain = constraints_from_loop(ir.innermost_loops()[0])
        assert domain.count_points() == 100


class TestScopDetection:
    def test_affine_nest_is_scop(self):
        ir = _ir(GEMM)
        scop = detect_scop(ir, ir.top_level_loops()[0])
        assert scop.is_scop
        assert scop.depth == 3

    def test_gather_subscript_rejects_scop(self):
        ir = _ir(
            "int idx[64];\nfloat a[64], b[64];\n"
            "void f() { for (int i = 0; i < 64; i++) a[idx[i]] = b[i]; }"
        )
        scop = detect_scop(ir, ir.top_level_loops()[0])
        assert not scop.is_scop

    def test_early_exit_rejects_scop(self):
        ir = _ir(
            "int a[64];\nvoid f() { for (int i = 0; i < 64; i++) { if (a[i]) break; a[i] = 1; } }"
        )
        assert not detect_scop(ir, ir.top_level_loops()[0]).is_scop

    def test_call_rejects_scop(self):
        ir = _ir("int a[64];\nvoid f() { for (int i = 0; i < 64; i++) record(a[i]); }")
        assert not detect_scop(ir, ir.top_level_loops()[0]).is_scop

    def test_function_scops_lists_all_nests(self):
        ir = _ir(
            "float a[64], b[64];\nvoid f() {"
            " for (int i = 0; i < 64; i++) a[i] = 1;"
            " for (int j = 0; j < 64; j++) b[j] = 2; }"
        )
        assert len(function_scops(ir)) == 2


class TestTransforms:
    def test_strip_mine_structure(self):
        ir = _ir("float a[1024];\nvoid f() { for (int i = 0; i < 1024; i++) a[i] = 1; }")
        loop = ir.innermost_loops()[0]
        tiled = strip_mine(loop, 32, ir)
        assert tiled.var == "i_tile"
        assert tiled.step == 32
        assert tiled.trip_count == 32
        inner = tiled.subloops()[0]
        assert inner.var == "i"
        assert inner.trip_count == 32

    def test_strip_mine_preserves_statements(self):
        ir = _ir("float a[1024];\nvoid f() { for (int i = 0; i < 1024; i++) a[i] = 1; }")
        loop = ir.innermost_loops()[0]
        tiled = strip_mine(loop, 64, ir)
        assert len(tiled.statements(recursive=True)) == len(loop.statements(recursive=True))

    def test_strip_mine_keeps_pragma_on_point_loop(self):
        ir = _ir(
            "float a[1024];\nvoid f() {\n#pragma clang loop vectorize_width(8)\n"
            "for (int i = 0; i < 1024; i++) a[i] = 1; }"
        )
        loop = ir.innermost_loops()[0]
        tiled = strip_mine(loop, 32, ir)
        assert tiled.pragma is None
        assert tiled.subloops()[0].pragma.vectorize_width == 8

    def test_tile_loop_nest_skips_small_working_sets(self):
        ir = _ir(
            "float G[64][64];\nvoid f(float x) { for (int i = 0; i < 64; i++)"
            " for (int j = 0; j < 64; j++) G[i][j] = x; }"
        )
        root = ir.top_level_loops()[0]
        tiled = tile_loop_nest(ir, root, tile_size=16, min_trip_count=8)
        # Inner 64-float rows (256 bytes) stay untouched.
        assert len(tiled.all_loops()) == len(root.all_loops())

    def test_clone_function_is_independent(self):
        ir = _ir(GEMM)
        copy = clone_function(ir)
        assert len(copy.all_loops()) == len(ir.all_loops())
        copy.top_level_loops()[0].body.clear()
        assert len(ir.top_level_loops()[0].body) > 0

    def test_fusion_of_identical_streams(self):
        ir = _ir(
            "float a[256], b[256];\nvoid f() {"
            " for (int i = 0; i < 256; i++) a[i] = 1;"
            " for (int i = 0; i < 256; i++) b[i] = 2; }"
        )
        fused = fuse_adjacent_loops(ir.body)
        loops = [node for node in fused if hasattr(node, "var")]
        assert len(loops) == 1
        assert len(loops[0].statements()) == 2

    def test_fusion_refused_for_producer_consumer(self):
        ir = _ir(
            "float a[256], b[256];\nvoid f() {"
            " for (int i = 0; i < 256; i++) a[i] = 1;"
            " for (int i = 0; i < 256; i++) b[i] = a[i]; }"
        )
        fused = fuse_adjacent_loops(ir.body)
        loops = [node for node in fused if hasattr(node, "var")]
        assert len(loops) == 2

    def test_fusion_refused_for_different_trip_counts(self):
        ir = _ir(
            "float a[256], b[128];\nvoid f() {"
            " for (int i = 0; i < 256; i++) a[i] = 1;"
            " for (int i = 0; i < 128; i++) b[i] = 2; }"
        )
        fused = fuse_adjacent_loops(ir.body)
        loops = [node for node in fused if hasattr(node, "var")]
        assert len(loops) == 2


class TestPollyOptimizer:
    def test_gemm_gets_tiled_and_faster(self):
        kernel = LoopKernel(name="gemm", source=GEMM, function_name="gemm", suite="test")
        pipeline = CompileAndMeasure()
        ir = pipeline.lower_kernel(kernel)
        optimizer = PollyOptimizer()
        transformed = optimizer.optimize(ir)
        assert optimizer.last_report.tiled_nests == 1
        assert len(transformed.all_loops()) > len(ir.all_loops())
        baseline = pipeline.measure_baseline(kernel)
        polly = pipeline.measure_function(kernel, transformed)
        assert polly.cycles < baseline.cycles

    def test_transformed_function_verifies(self):
        ir = _ir(GEMM)
        transformed = PollyOptimizer().optimize(ir)
        assert verify_function(transformed, raise_on_error=False) == []

    def test_original_function_not_mutated(self):
        ir = _ir(GEMM)
        loop_count = len(ir.all_loops())
        PollyOptimizer().optimize(ir)
        assert len(ir.all_loops()) == loop_count

    def test_tiling_can_be_disabled(self):
        ir = _ir(GEMM)
        optimizer = PollyOptimizer(PollyConfig(enable_tiling=False))
        transformed = optimizer.optimize(ir)
        assert len(transformed.all_loops()) == len(ir.all_loops())

    def test_non_scop_left_alone(self):
        ir = _ir(
            "int idx[64];\nfloat a[64][64], b[64];\nvoid f() {"
            " for (int i = 0; i < 64; i++) for (int j = 0; j < 64; j++) a[i][idx[j]] = b[j]; }"
        )
        optimizer = PollyOptimizer()
        transformed = optimizer.optimize(ir)
        assert optimizer.last_report.tiled_nests == 0
        assert len(transformed.all_loops()) == len(ir.all_loops())
