"""Tests for the compile service: the batched policy-serving front door.

The serving guarantees pinned here:

* a warm persistent store answers without a single simulator call (the
  ``store`` tier),
* identical concurrent requests coalesce — one forward, one simulation,
  followers marked ``coalesced`` — while distinct requests in one tick
  still share a single ``act_batch`` trunk forward,
* requests route per task for every registered task through one service,
* shutdown drains: every admitted request is answered before the worker
  exits (and a non-draining stop fails them fast instead of hanging),
* the TCP front end round-trips requests by id, and the stats report
  renders the latency/throughput/tier table.
"""

from __future__ import annotations

import pytest

from repro.core.framework import NeuroVectorizer, TrainingConfig
from repro.datasets.kernels import LoopKernel
from repro.distributed import DiskBackedRewardCache
from repro.serving import (
    TIER_COLD,
    TIER_FRONTEND,
    TIER_STORE,
    CompileRequest,
    CompileServer,
    CompileService,
    InProcessClient,
    ServiceClosed,
    ServingError,
    TCPClient,
)
from repro.simulator.engine import Simulator
from repro.tasks import get_task

ALL_TASKS = ("vectorization", "polly-tiling", "unrolling")

REDUCTION_SOURCE = """
float a[2048], b[2048];
float work() {
    float s = 0;
    for (int i = 0; i < 2048; i++) {
        s += a[i] * b[i];
    }
    return s;
}
"""

STREAM_SOURCE = """
float x[2048], y[2048];
void scale(float alpha) {
    for (int i = 0; i < 2048; i++) {
        y[i] = alpha * x[i];
    }
}
"""


def count_simulations(body):
    """Run ``body()`` counting Simulator.simulate calls (any thread)."""
    calls = {"n": 0}
    original = Simulator.simulate

    def counting(self, *args, **kwargs):
        calls["n"] += 1
        return original(self, *args, **kwargs)

    Simulator.simulate = counting
    try:
        result = body()
    finally:
        Simulator.simulate = original
    return result, calls["n"]


@pytest.fixture(scope="module")
def trained():
    """One tiny policy trained jointly on every registered task."""
    kernels = [
        LoopKernel(name="work", source=REDUCTION_SOURCE, function_name="work"),
        LoopKernel(name="stream", source=STREAM_SOURCE, function_name="scale"),
    ]
    config = TrainingConfig(
        tasks=list(ALL_TASKS),
        rl_total_steps=48,
        rl_batch_size=24,
        learning_rate=1e-3,
        pretrain_epochs=0,
        seed=0,
    )
    framework, _artifacts = NeuroVectorizer.train(kernels, config)
    yield framework
    framework.close()


def fresh_service(trained, **knobs):
    """A service on the trained policy with its own pipeline/cache/memo."""
    knobs.setdefault("tasks", list(ALL_TASKS))
    return CompileService(trained.agent.policy, trained.embedding_model, **knobs)


class TestTiers:
    def test_cold_then_store_on_shared_cache(self, trained):
        service = fresh_service(trained)
        with service:
            first = service.optimize(CompileRequest(source=STREAM_SOURCE))
            assert first.ok and first.tier == TIER_COLD
            assert first.decisions and first.cycles > 0
            (second, simulations) = count_simulations(
                lambda: service.optimize(CompileRequest(source=STREAM_SOURCE))
            )
        assert second.ok
        assert second.tier == TIER_STORE
        assert simulations == 0
        assert second.decisions == first.decisions
        assert second.cycles == first.cycles

    def test_warm_disk_store_simulates_nothing(self, trained, tmp_path):
        cache_dir = str(tmp_path / "store")
        request = CompileRequest(source=REDUCTION_SOURCE, task="unrolling")

        cold_cache = DiskBackedRewardCache.open(cache_dir)
        with fresh_service(trained, reward_cache=cold_cache) as cold_service:
            cold = cold_service.optimize(request)
        cold_cache.close()
        assert cold.ok and cold.tier == TIER_COLD

        warm_cache = DiskBackedRewardCache.open(cache_dir)
        assert warm_cache.preloaded > 0
        # A brand-new service: empty observation memo, fresh pipeline —
        # only the persisted measurements are warm.
        with fresh_service(trained, reward_cache=warm_cache) as warm_service:
            warm, simulations = count_simulations(
                lambda: warm_service.optimize(request)
            )
        warm_cache.close()
        assert warm.ok
        assert simulations == 0
        assert warm.tier == TIER_STORE
        assert warm.decisions == cold.decisions
        assert warm.cycles == cold.cycles

    def test_frontend_tier_when_memo_hits_but_cache_is_cold(self, trained):
        service = fresh_service(trained)
        with service:
            first = service.optimize(CompileRequest(source=STREAM_SOURCE))
            assert first.tier == TIER_COLD
            service.reward_cache.clear()
            second = service.optimize(CompileRequest(source=STREAM_SOURCE))
        assert second.ok
        assert second.tier == TIER_FRONTEND
        assert second.decisions == first.decisions


class TestCoalescing:
    def test_duplicates_share_one_computation(self, trained):
        # What one request costs on this policy/kernel, measured alone.
        solo_service = fresh_service(trained)
        with solo_service:
            _, solo_sims = count_simulations(
                lambda: solo_service.optimize(CompileRequest(source=STREAM_SOURCE))
            )
        assert solo_sims > 0

        # Three identical requests admitted before the worker runs land in
        # one tick; the leader computes, the followers ride along.
        service = fresh_service(trained, max_batch_size=3)
        futures = [
            service.submit(CompileRequest(source=STREAM_SOURCE, name=f"user{i}"))
            for i in range(3)
        ]
        responses, dup_sims = count_simulations(
            lambda: (service.start() and None)
            or [future.result(timeout=30) for future in futures]
        )
        service.stop()
        assert dup_sims == solo_sims
        assert all(response.ok for response in responses)
        assert [response.coalesced for response in responses] == [
            False, True, True,
        ]
        assert all(response.batch_size == 3 for response in responses)
        first = responses[0]
        for response in responses[1:]:
            assert response.decisions == first.decisions
            assert response.cycles == first.cycles
        report = service.report()
        assert report.ticks == 1
        assert report.coalesced == 2

    def test_display_name_does_not_split_the_group(self):
        a = CompileRequest(source=STREAM_SOURCE, name="alice", request_id="1")
        b = CompileRequest(source=STREAM_SOURCE, name="bob", request_id="2")
        c = CompileRequest(source=STREAM_SOURCE, task="unrolling")
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestTaskRouting:
    def test_one_tick_serves_every_registered_task(self, trained):
        service = fresh_service(trained, max_batch_size=len(ALL_TASKS))
        futures = {
            task_name: service.submit(
                CompileRequest(source=REDUCTION_SOURCE, task=task_name)
            )
            for task_name in ALL_TASKS
        }
        with service:
            responses = {
                name: future.result(timeout=60)
                for name, future in futures.items()
            }
        assert service.report().ticks == 1  # mixed tasks, one trunk forward
        for task_name, response in responses.items():
            assert response.ok, response.error
            assert response.task == task_name
            task = get_task(task_name)
            assert response.decisions
            for action in response.decisions.values():
                for component, menu in zip(action, task.menus):
                    assert component in menu

    def test_unknown_task_is_an_error_response(self, trained):
        service = fresh_service(trained)
        with service:
            response = service.optimize(
                CompileRequest(source=STREAM_SOURCE, task="loop-fusion")
            )
        assert not response.ok
        assert "unknown task" in response.error
        assert "loop-fusion" in response.error

    def test_mismatched_policy_head_rejected_at_construction(self, trained):
        # An unrolling task with a wider factor menu than the head bank the
        # policy trained: decoding would silently mislabel actions, so the
        # constructor must refuse.
        widened = get_task("unrolling").__class__(unroll_factors=range(1, 130))
        with pytest.raises(ValueError, match="menus"):
            fresh_service(trained, tasks=[widened])


class TestShutdown:
    def test_drain_answers_every_admitted_request(self, trained):
        service = fresh_service(trained, max_batch_size=2, max_wait_us=0)
        futures = [
            service.submit(
                CompileRequest(source=REDUCTION_SOURCE, task=task_name)
            )
            for task_name in ("vectorization", "unrolling", "vectorization")
        ]
        service.start()
        service.stop(drain=True)
        responses = [future.result(timeout=1) for future in futures]
        assert all(response.ok for response in responses)

    def test_stop_without_drain_fails_queued_requests(self, trained):
        service = fresh_service(trained)  # never started: all stay queued
        future = service.submit(CompileRequest(source=STREAM_SOURCE))
        service.stop(drain=False)
        with pytest.raises(ServingError):
            future.result(timeout=1)

    def test_submit_after_stop_raises_service_closed(self, trained):
        service = fresh_service(trained)
        with service:
            pass
        with pytest.raises(ServiceClosed):
            service.submit(CompileRequest(source=STREAM_SOURCE))


class TestClientsAndStats:
    def test_in_process_client_batches_round(self, trained):
        service = fresh_service(trained, max_batch_size=4)
        client = InProcessClient(service)
        with service:
            responses = client.optimize_many(
                [REDUCTION_SOURCE, STREAM_SOURCE], timeout=60
            )
        assert [response.ok for response in responses] == [True, True]
        assert responses[0].speedup > 0

    def test_tcp_round_trip_matches_by_id(self, trained):
        service = fresh_service(trained, max_batch_size=4)
        with CompileServer(service) as server:
            with TCPClient.connect(server.address) as client:
                responses = client.optimize_many(
                    [
                        CompileRequest(source=REDUCTION_SOURCE, name="red"),
                        CompileRequest(source=STREAM_SOURCE, task="unrolling",
                                       name="blue"),
                    ]
                )
        assert [response.kernel_name for response in responses] == ["red", "blue"]
        assert [response.task for response in responses] == [
            "vectorization", "unrolling",
        ]
        assert all(response.ok for response in responses)

    def test_stats_report_renders_tier_table(self, trained):
        service = fresh_service(trained, slo_ms=10_000.0)
        with service:
            service.optimize(CompileRequest(source=STREAM_SOURCE))
            service.optimize(CompileRequest(source=STREAM_SOURCE))
        report = service.report()
        assert report.requests == 2
        assert report.tier_counts.get(TIER_COLD) == 1
        assert report.tier_counts.get(TIER_STORE) == 1
        assert report.latency_p95_ms >= report.latency_p50_ms > 0
        assert report.slo_attainment == pytest.approx(1.0)
        rendered = service.stats_report().render()
        for needle in ("requests", "p50", "p95", "p99", "store", "cold"):
            assert needle in rendered

    def test_from_framework_serves_trained_tasks(self, trained):
        service = CompileService.from_framework(trained)
        assert service.served_tasks == list(ALL_TASKS)
        assert service.reward_cache is trained.reward_cache
