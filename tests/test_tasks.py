"""Tests for the pluggable optimization-task API (repro.tasks)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.agents.brute_force import BruteForceAgent
from repro.agents.random_search import RandomSearchAgent
from repro.cache.reward_cache import (
    CachedMeasurement,
    EvaluationBatcher,
    RewardCache,
    RewardKey,
)
from repro.core.framework import (
    NeuroVectorizer,
    OptimizationResult,
    TrainingConfig,
    build_embedding_model,
)
from repro.core.loop_extractor import extract_loops
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.distributed import (
    CompactionPolicy,
    DiskBackedRewardCache,
    EvaluationService,
    PersistentRewardStore,
)
from repro.distributed.store import SCHEMA_NAME
from repro.rl.env import VectorizationEnv, build_samples
from repro.rl.spaces import DiscreteFactorSpace, default_action_space
from repro.tasks import (
    OptimizationTask,
    PollyTilingTask,
    VectorizationTask,
    available_tasks,
    get_task,
    register_task,
    resolve_task,
)


TWO_NEST_SOURCE = """
float A[512][512], B[512][512], C[512][512];

void kernel() {
    for (int i = 0; i < 512; i++) {
        for (int j = 0; j < 512; j++) {
            C[i][j] = 0.0f;
        }
    }
    for (int i2 = 0; i2 < 512; i2++) {
        for (int k = 0; k < 512; k++) {
            C[i2][k] = C[i2][k] + A[i2][k] * B[k][i2];
        }
    }
}
"""

STREAM_SOURCE = """
float x[2048], y[2048];
void scale(float alpha) {
    for (int i = 0; i < 2048; i++) {
        y[i] = alpha * x[i];
    }
}
"""


def two_nest_kernel() -> LoopKernel:
    return LoopKernel(name="two_nest", source=TWO_NEST_SOURCE, function_name="kernel")


def stream_kernel() -> LoopKernel:
    return LoopKernel(name="stream", source=STREAM_SOURCE, function_name="scale")


def outcome_tuples(outcomes):
    return [(o.measurement.cycles, o.measurement.compile_seconds) for o in outcomes]


class ScalarizeTask(OptimizationTask):
    """Module-level custom task (picklable) used by the worker tests.

    One boolean decision per innermost loop: force scalar code or apply the
    configured vector factors.  Deliberately NOT registered with
    ``register_task`` — workers must receive it as a shipped object.
    """

    name = "test-scalarize"
    action_labels = ("scalar",)
    menus = ((0, 1),)

    def __init__(self, vector_factors=(8, 2)):
        self.vector_factors = tuple(vector_factors)

    def decision_sites(self, kernel):
        return VectorizationTask().decision_sites(kernel)

    def evaluate(self, pipeline, kernel, site_index, action):
        (scalar,) = self.cache_key(action)
        factors = (1, 1) if scalar else self.vector_factors
        return pipeline.measure_with_factors(kernel, {site_index: factors})


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_both_tasks_registered(self):
        names = available_tasks()
        assert "vectorization" in names
        assert "polly-tiling" in names

    def test_get_task_instantiates(self):
        assert isinstance(get_task("vectorization"), VectorizationTask)
        assert isinstance(get_task("polly-tiling"), PollyTilingTask)

    def test_unknown_task_error_lists_registered(self):
        with pytest.raises(ValueError) as excinfo:
            get_task("phase-ordering")
        message = str(excinfo.value)
        assert "phase-ordering" in message
        assert "vectorization" in message
        assert "polly-tiling" in message

    def test_resolve_task_default_is_vectorization(self):
        assert resolve_task(None).name == "vectorization"

    def test_resolve_task_accepts_name_and_instance(self):
        task = PollyTilingTask()
        assert resolve_task("polly-tiling").name == "polly-tiling"
        assert resolve_task(task) is task

    def test_resolve_task_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_task(42)

    def test_duplicate_registration_rejected_unless_overwritten(self):
        register_task("test-dummy-task", VectorizationTask, overwrite=True)
        with pytest.raises(ValueError):
            register_task("test-dummy-task", VectorizationTask)
        register_task("test-dummy-task", PollyTilingTask, overwrite=True)
        assert isinstance(get_task("test-dummy-task"), PollyTilingTask)


# ---------------------------------------------------------------------------
# Backward-compat shims
# ---------------------------------------------------------------------------


class TestBackwardCompat:
    def test_default_action_space_matches_vectorization_task(self):
        space = default_action_space()
        assert isinstance(space, DiscreteFactorSpace)
        assert space.num_factor_pairs == 35
        task_space = VectorizationTask().action_space("discrete")
        assert task_space.menus == space.menus

    def test_training_config_defaults_to_vectorization(self):
        config = TrainingConfig()
        assert config.task == "vectorization"
        assert resolve_task(config.task).name == "vectorization"

    def test_env_without_task_uses_vectorization(self):
        kernels = [stream_kernel()]
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels)
        samples = build_samples(kernels, embedding, pipeline)
        env = VectorizationEnv(samples, pipeline=pipeline, shuffle=False)
        assert env.task.name == "vectorization"
        env.reset()
        result = env.step((2, 1))
        assert result.info["vf"] == 4.0
        assert result.info["interleave"] == 2.0

    def test_reward_key_legacy_constructor(self):
        key = RewardKey(
            kernel_hash="k" * 40, machine_hash="m" * 40, loop_index=0,
            vf=4, interleave=2,
        )
        assert key.action == (4, 2)
        assert key.task == "vectorization"
        assert key.vf == 4
        assert key.interleave == 2
        same = RewardKey(
            kernel_hash="k" * 40, machine_hash="m" * 40, loop_index=0,
            action=(4, 2),
        )
        assert key == same and hash(key) == hash(same)

    def test_reward_key_rejects_ambiguous_arguments(self):
        with pytest.raises(TypeError):
            RewardKey("k", "m", 0)
        with pytest.raises(TypeError):
            RewardKey("k", "m", 0, vf=4, interleave=2, action=(4, 2))

    def test_batcher_legacy_add_matches_add_action(self):
        pipeline = CompileAndMeasure()
        cache = RewardCache()
        batcher = EvaluationBatcher(pipeline, cache)
        batcher.add(stream_kernel(), 0, 4, 2)
        batcher.add_action(stream_kernel(), 0, (4, 2))
        first, second = batcher.flush()
        assert first.measurement == second.measurement
        assert second.was_cached  # deduplicated against the legacy request

    def test_different_task_same_action_never_collides(self):
        cache = RewardCache()
        machine = CompileAndMeasure().machine
        vector_key = cache.key_for(
            stream_kernel(), machine, 0, action=(1, 1), task="vectorization"
        )
        polly_key = cache.key_for(
            stream_kernel(), machine, 0, action=(1, 1), task="polly-tiling"
        )
        assert vector_key != polly_key
        cache.put(vector_key, CachedMeasurement(1.0, 0.1))
        assert cache.peek(polly_key) is None


# ---------------------------------------------------------------------------
# VectorizationTask
# ---------------------------------------------------------------------------


class TestVectorizationTask:
    def test_decision_sites_match_extracted_loops(self):
        task = VectorizationTask()
        kernel = two_nest_kernel()
        sites = task.decision_sites(kernel)
        loops = extract_loops(kernel.source, function_name=kernel.function_name)
        assert [site.index for site in sites] == [loop.loop_index for loop in loops]

    def test_evaluate_matches_measure_with_factors(self):
        task = VectorizationTask()
        pipeline = CompileAndMeasure()
        kernel = stream_kernel()
        via_task = task.evaluate(pipeline, kernel, 0, (8, 2))
        direct = pipeline.measure_with_factors(kernel, {0: (8, 2)})
        assert via_task.cycles == direct.cycles

    def test_apply_injects_pragmas(self):
        task = VectorizationTask()
        application = task.apply(
            CompileAndMeasure(), stream_kernel(), {0: (8, 2)}
        )
        assert "#pragma clang loop" in application.transformed_source
        assert application.decisions == {0: (8, 2)}

    def test_cache_key_validates_dimensions(self):
        with pytest.raises(ValueError):
            VectorizationTask().cache_key((1, 2, 3))

    def test_cache_key_rejects_out_of_menu_values(self):
        # Accepting them would alias distinct cache entries for inputs the
        # transform treats identically (e.g. any truthy fuse flag).
        with pytest.raises(ValueError, match="menu"):
            VectorizationTask().cache_key((3, 1))
        with pytest.raises(ValueError, match="fuse"):
            PollyTilingTask().cache_key((8, 8))


# ---------------------------------------------------------------------------
# PollyTilingTask
# ---------------------------------------------------------------------------


class TestPollyTilingTask:
    def test_one_site_per_top_level_nest(self):
        from repro.ir.nodes import Loop

        task = PollyTilingTask()
        kernel = two_nest_kernel()
        sites = task.decision_sites(kernel)
        ir = CompileAndMeasure().lower_kernel(kernel)
        top_level = [node for node in ir.body if isinstance(node, Loop)]
        assert len(sites) == len(top_level) == 2
        assert [site.index for site in sites] == [0, 1]

    def test_default_action_is_identity(self):
        task = PollyTilingTask()
        pipeline = CompileAndMeasure()
        kernel = two_nest_kernel()
        baseline = pipeline.measure_baseline(kernel)
        untouched = task.evaluate(pipeline, kernel, 0, task.default_action())
        assert untouched.cycles == baseline.cycles

    def test_tiling_action_changes_the_loop_structure(self):
        task = PollyTilingTask()
        pipeline = CompileAndMeasure()
        kernel = two_nest_kernel()
        before = len(pipeline.lower_kernel(kernel).all_loops())
        application = task.apply(pipeline, kernel, {0: (32, 0), 1: (32, 0)})
        assert "tiled 2 nest(s)" in application.description
        assert application.result.cycles != pipeline.measure_baseline(kernel).cycles
        # The original IR is untouched by the transform.
        assert len(pipeline.lower_kernel(kernel).all_loops()) == before

    def test_evaluate_is_deterministic(self):
        task = PollyTilingTask()
        pipeline = CompileAndMeasure()
        kernel = two_nest_kernel()
        first = task.evaluate(pipeline, kernel, 1, (16, 1))
        second = task.evaluate(pipeline, kernel, 1, (16, 1))
        assert first.cycles == second.cycles
        assert first.compile_seconds == second.compile_seconds

    def test_action_space_menus(self):
        task = PollyTilingTask()
        space = task.action_space("discrete")
        assert space.menus == task.menus
        assert space.sizes == (6, 2)
        assert task.action_labels == ("tile", "fuse")

    def test_conditional_wrapped_nest_keeps_site_indices_aligned(self):
        # Regression: a nest inside an ``if`` is its own decision site, so
        # the transform walk must recurse through conditionals — counting
        # only direct body children would apply site 1's decision to the
        # third nest and silently drop site 2's.
        source = """
        float a[4096], b[4096], c[4096];
        void kernel(int flag) {
            for (int i = 0; i < 4096; i++) {
                a[i] = a[i] + 1.0f;
            }
            if (flag) {
                for (int j = 0; j < 4096; j++) {
                    b[j] = b[j] * 2.0f;
                }
            }
            for (int k = 0; k < 4096; k++) {
                c[k] = c[k] + a[k];
            }
        }
        """
        kernel = LoopKernel(name="guarded", source=source, function_name="kernel")
        task = PollyTilingTask()
        pipeline = CompileAndMeasure()
        sites = task.decision_sites(kernel)
        assert len(sites) == 3

        # Tiling exactly one site must tile exactly one nest — the right one.
        for index in range(3):
            application = task.apply(pipeline, kernel, {index: (64, 0)})
            assert "tiled 1 nest(s)" in application.description

        def loop_vars(function):
            return sorted(loop.var for loop in function.all_loops())

        baseline_vars = loop_vars(pipeline.lower_kernel(kernel))
        transformed, tiled, _ = task._transform(pipeline, kernel, {2: (64, 0)})
        assert tiled == 1
        # Site 2 is the loop over k: only k gained a tile loop.
        assert sorted(set(loop_vars(transformed)) - set(baseline_vars)) == ["k_tile"]

    def test_env_step_reports_task_labels(self):
        kernels = [two_nest_kernel()]
        task = PollyTilingTask()
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels)
        samples = build_samples(kernels, embedding, pipeline, task=task)
        assert len(samples) == 2
        env = VectorizationEnv(
            samples, pipeline=pipeline, shuffle=False, task=task
        )
        env.reset()
        result = env.step((3, 1))  # menu indices -> tile 32, fuse 1
        assert result.info["tile"] == 32.0
        assert result.info["fuse"] == 1.0
        assert "vf" not in result.info


# ---------------------------------------------------------------------------
# End-to-end training and agents on the Polly task
# ---------------------------------------------------------------------------


class TestPollyEndToEnd:
    @pytest.fixture(scope="class")
    def trained(self):
        kernels = [two_nest_kernel(), stream_kernel()]
        config = TrainingConfig(
            task="polly-tiling",
            rl_total_steps=48,
            rl_batch_size=24,
            learning_rate=1e-3,
            pretrain_epochs=1,
            pretrain_samples=2,
            seed=0,
        )
        framework, artifacts = NeuroVectorizer.train(kernels, config)
        yield framework, artifacts, kernels
        framework.close()

    def test_training_runs_and_sets_task(self, trained):
        framework, artifacts, _ = trained
        assert framework.task.name == "polly-tiling"
        assert len(artifacts.history.iterations) == 2

    def test_optimize_kernel_returns_task_result(self, trained):
        framework, _, kernels = trained
        result = framework.optimize_kernel(kernels[0])
        assert isinstance(result, OptimizationResult)
        assert result.task == "polly-tiling"
        assert set(result.decisions) <= {0, 1}
        for action in result.decisions.values():
            assert action[0] in framework.task.menus[0]
            assert action[1] in framework.task.menus[1]
        assert result.baseline_cycles > 0

    def test_repeat_optimize_kernel_is_served_from_the_cache(self, trained):
        from repro.simulator.engine import Simulator

        framework, _, kernels = trained
        first = framework.optimize_kernel(kernels[0])
        calls = {"n": 0}
        original = Simulator.simulate

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        Simulator.simulate = counting
        try:
            second = framework.optimize_kernel(kernels[0])
        finally:
            Simulator.simulate = original
        assert calls["n"] == 0
        assert second.cycles == first.cycles
        assert second.decisions == first.decisions

    def test_vectorize_kernel_rejected_for_other_tasks(self, trained):
        framework, _, kernels = trained
        with pytest.raises(ValueError, match="polly-tiling"):
            framework.vectorize_kernel(kernels[0])

    def test_mismatched_agent_task_rejected_at_construction(self):
        # A vectorization brute-force agent under a polly framework would
        # silently apply (VF, IF) choices as (tile, fuse) — both are 2-dim.
        kernels = [stream_kernel()]
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels)
        agent = BruteForceAgent(pipeline)  # defaults to vectorization
        with pytest.raises(ValueError, match="vectorization"):
            NeuroVectorizer(
                embedding, agent, pipeline, task=PollyTilingTask()
            )

    def test_brute_force_agent_searches_polly_grid(self):
        task = PollyTilingTask()
        pipeline = CompileAndMeasure()
        cache = RewardCache()
        agent = BruteForceAgent(pipeline, reward_cache=cache, task=task)
        decision = agent.select_factors(
            np.zeros(4), kernel=two_nest_kernel(), loop_index=0
        )
        assert decision.as_tuple() in task.action_space("discrete").all_actions()
        # The whole 6x2 grid was evaluated exactly once.
        assert cache.stats.misses == 12

    def test_random_search_agent_draws_from_polly_menus(self):
        task = PollyTilingTask()
        agent = RandomSearchAgent(seed=3, task=task)
        for index in range(16):
            decision = agent.select_factors(
                np.zeros(2), kernel=two_nest_kernel(), loop_index=index
            )
            tile, fuse = decision.as_tuple()
            assert tile in task.menus[0]
            assert fuse in task.menus[1]


# ---------------------------------------------------------------------------
# Sharded evaluation identity (both tasks)
# ---------------------------------------------------------------------------


class TestShardedIdentity:
    def test_vectorization_workers_match_serial(self):
        requests = [
            (kernel, 0, vf, interleave)
            for kernel in (two_nest_kernel(), stream_kernel())
            for vf in (1, 4, 16)
            for interleave in (1, 2)
        ]
        serial = outcome_tuples(
            EvaluationService(CompileAndMeasure(), workers=0).evaluate(requests)
        )
        with EvaluationService(CompileAndMeasure(), workers=2) as service:
            parallel = outcome_tuples(service.evaluate(requests))
        assert parallel == serial

    def test_polly_workers_match_serial(self):
        task = PollyTilingTask()
        requests = [
            (kernel, site, (tile, fuse))
            for kernel in (two_nest_kernel(), stream_kernel())
            for site in (0, 1)
            for tile in (1, 16, 64)
            for fuse in (0, 1)
        ]
        serial = outcome_tuples(
            EvaluationService(CompileAndMeasure(), workers=0).evaluate(
                requests, task=task
            )
        )
        with EvaluationService(CompileAndMeasure(), workers=2) as service:
            parallel = outcome_tuples(service.evaluate(requests, task=task))
        assert parallel == serial

    def test_reconfigured_same_name_task_is_reshipped_to_workers(self):
        # A second instance reusing the task name must be re-shipped, not
        # silently evaluated with the first instance's configuration.
        with EvaluationService(CompileAndMeasure(), workers=2) as service:
            service.evaluate(
                [(two_nest_kernel(), 0, (0,))], task=ScalarizeTask((8, 2))
            )
            wide = ScalarizeTask((64, 16))
            # A different kernel, so nothing is answered from the cache.
            parallel = outcome_tuples(
                service.evaluate([(stream_kernel(), 0, (0,))], task=wide)
            )
        serial = outcome_tuples(
            EvaluationService(CompileAndMeasure(), workers=0).evaluate(
                [(stream_kernel(), 0, (0,))], task=ScalarizeTask((64, 16))
            )
        )
        assert parallel == serial

    def test_unregistered_custom_task_evaluates_in_workers(self):
        # The task object is shipped to workers with the first request, so
        # a task the worker process never registered still evaluates — and
        # identically to the serial path.
        task = ScalarizeTask()
        requests = [
            (kernel, 0, (scalar,))
            for kernel in (two_nest_kernel(), stream_kernel())
            for scalar in (0, 1)
        ]
        serial = outcome_tuples(
            EvaluationService(CompileAndMeasure(), workers=0).evaluate(
                requests, task=task
            )
        )
        with EvaluationService(CompileAndMeasure(), workers=2) as service:
            parallel = outcome_tuples(service.evaluate(requests, task=task))
        assert parallel == serial


# ---------------------------------------------------------------------------
# Store schema versioning
# ---------------------------------------------------------------------------


class TestStoreSchemaVersioning:
    @staticmethod
    def _write_v1_segment(directory: str) -> str:
        """A pre-redesign segment: version-1 header, (vf, if) key columns."""
        path = os.path.join(directory, "segment-legacy.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"schema": SCHEMA_NAME, "version": 1}) + "\n")
            handle.write(
                json.dumps(
                    {
                        "key": ["a" * 40, "b" * 40, 0, 4, 2, 256],
                        "cycles": 123.0,
                        "compile_seconds": 0.5,
                    }
                )
                + "\n"
            )
        return path

    def test_pre_redesign_segment_is_skipped_not_mis_hit(self, tmp_path):
        self._write_v1_segment(str(tmp_path))
        store = PersistentRewardStore(str(tmp_path))
        assert store.load() == {}
        assert store.stats.segments_skipped == 1
        assert store.stats.records_loaded == 0

    def test_disk_cache_over_stale_store_preloads_nothing(self, tmp_path):
        self._write_v1_segment(str(tmp_path))
        cache = DiskBackedRewardCache.open(str(tmp_path))
        assert cache.preloaded == 0
        # The stale key shape can never be looked up: every v2 key carries a
        # task tag and action tuple, so no query maps onto the old record.
        key = cache.key_for(
            stream_kernel(), CompileAndMeasure().machine, 0, 4, 2
        )
        assert cache.peek(key) is None
        cache.close()

    def test_task_tagged_keys_round_trip_through_store(self, tmp_path):
        key = RewardKey(
            kernel_hash="k" * 40,
            machine_hash="m" * 40,
            loop_index=1,
            action=(32, 1),
            task="polly-tiling",
        )
        store = PersistentRewardStore(str(tmp_path))
        store.append(key, CachedMeasurement(cycles=77.0, compile_seconds=0.25))
        store.close()
        reloaded = PersistentRewardStore(str(tmp_path)).load()
        assert reloaded == {key: CachedMeasurement(77.0, 0.25)}
        (loaded_key,) = reloaded
        assert loaded_key.task == "polly-tiling"
        assert loaded_key.action == (32, 1)


# ---------------------------------------------------------------------------
# Compaction on close
# ---------------------------------------------------------------------------


class TestCompactOnClose:
    @staticmethod
    def _fragment(directory: str, segments: int = 3) -> None:
        for index in range(segments):
            store = PersistentRewardStore(directory)
            key = RewardKey(
                kernel_hash=f"{index:02d}" + "0" * 38,
                machine_hash="m" * 40,
                loop_index=0,
                action=(4, 2),
            )
            store.append(key, CachedMeasurement(float(index), 0.0))
            store.close()

    @staticmethod
    def _framework(cache, compaction=None) -> NeuroVectorizer:
        kernels = [stream_kernel()]
        from repro.agents.baseline import BaselineAgent

        pipeline = CompileAndMeasure()
        return NeuroVectorizer(
            build_embedding_model(kernels),
            BaselineAgent(pipeline),
            pipeline,
            reward_cache=cache,
            compaction=compaction,
        )

    def test_fragmented_store_shrinks_on_close(self, tmp_path):
        self._fragment(str(tmp_path), segments=3)
        cache = DiskBackedRewardCache.open(str(tmp_path))
        framework = self._framework(
            cache, CompactionPolicy(enabled=True, min_segments=2)
        )
        assert len(cache.store.segment_paths()) == 3
        framework.close()
        assert len(cache.store.segment_paths()) == 1
        assert len(PersistentRewardStore(str(tmp_path)).load()) == 3

    def test_disabled_policy_leaves_segments_alone(self, tmp_path):
        self._fragment(str(tmp_path), segments=3)
        cache = DiskBackedRewardCache.open(str(tmp_path))
        framework = self._framework(cache, CompactionPolicy(enabled=False))
        framework.close()
        assert len(cache.store.segment_paths()) == 3

    def test_size_gate_blocks_small_stores(self, tmp_path):
        self._fragment(str(tmp_path), segments=3)
        cache = DiskBackedRewardCache.open(str(tmp_path))
        framework = self._framework(
            cache,
            CompactionPolicy(enabled=True, min_segments=2, min_total_bytes=1 << 30),
        )
        framework.close()
        assert len(cache.store.segment_paths()) == 3

    def test_training_config_threads_compaction_policy(self, tmp_path):
        kernels = [stream_kernel()]
        config = TrainingConfig(
            rl_total_steps=12,
            rl_batch_size=12,
            pretrain_epochs=0,
            cache_dir=str(tmp_path),
            compact_on_close=True,
            compact_min_segments=2,
        )
        framework, _ = NeuroVectorizer.train(kernels, config)
        assert framework.compaction is not None
        assert framework.compaction.enabled
        framework.close()
        # Two fresh runs leave two segments; a third with the policy active
        # compacts the directory back to one on close.
        framework, _ = NeuroVectorizer.train(kernels, config)
        framework.close()
        assert len(PersistentRewardStore(str(tmp_path)).segment_paths()) == 1


# ---------------------------------------------------------------------------
# Custom tasks plug in end-to-end
# ---------------------------------------------------------------------------


class TestCustomTask:
    def test_minimal_custom_task_runs_through_the_env(self):
        class ToggleTask(OptimizationTask):
            """One boolean decision per innermost loop: scalarize or not."""

            name = "test-toggle"
            action_labels = ("scalar",)
            menus = ((0, 1),)

            def decision_sites(self, kernel):
                return VectorizationTask().decision_sites(kernel)

            def evaluate(self, pipeline, kernel, site_index, action):
                (scalar,) = self.cache_key(action)
                factors = (1, 1) if scalar else (8, 2)
                return pipeline.measure_with_factors(kernel, {site_index: factors})

        task = ToggleTask()
        kernels = [stream_kernel()]
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels)
        samples = build_samples(kernels, embedding, pipeline, task=task)
        env = VectorizationEnv(samples, pipeline=pipeline, shuffle=False, task=task)
        env.reset()
        result = env.step((0,))
        assert result.info["scalar"] == 0.0
        env.reset()
        other = env.step((1,))
        assert other.info["scalar"] == 1.0
        assert other.reward != result.reward
