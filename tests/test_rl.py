"""RL stack tests: spaces, environment, policies, PPO, tune."""

import numpy as np
import pytest

from repro.core.framework import build_embedding_model
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.rl.env import VectorizationEnv, build_samples
from repro.rl.policy import ContinuousPolicy, DiscretePolicy, make_policy
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.rl.spaces import (
    ContinuousJointSpace,
    ContinuousPairSpace,
    DiscreteFactorSpace,
    default_action_space,
)
from repro.rl.tune import best_experiment, grid_search, run_experiments


def _tiny_kernels():
    sources = {
        "reduction": (
            "float a[2048], b[2048];\nfloat kernel() { float s = 0;"
            " for (int i = 0; i < 2048; i++) s += a[i] * b[i]; return s; }"
        ),
        "stream": (
            "float x[2048], y[2048];\nvoid kernel(float a) {"
            " for (int i = 0; i < 2048; i++) y[i] = a * x[i] + y[i]; }"
        ),
        "tiny": (
            "int a[16], b[16];\nvoid kernel() {"
            " for (int i = 0; i < 16; i++) a[i] = a[i] + b[i]; }"
        ),
        "recurrence": (
            "float a[2048], b[2048];\nvoid kernel() { float c = 0;"
            " for (int i = 0; i < 2048; i++) { c = a[i] - c; b[i] = c; } }"
        ),
    }
    return [
        LoopKernel(name=name, source=source, function_name="kernel", suite="test")
        for name, source in sources.items()
    ]


@pytest.fixture(scope="module")
def tiny_env():
    kernels = _tiny_kernels()
    pipeline = CompileAndMeasure()
    embedding = build_embedding_model(kernels)
    samples = build_samples(kernels, embedding, pipeline)
    return VectorizationEnv(samples, pipeline=pipeline, seed=0)


class TestActionSpaces:
    def test_discrete_decode(self):
        space = DiscreteFactorSpace()
        assert space.decode((0, 0)) == (1, 1)
        assert space.decode((6, 4)) == (64, 16)
        assert space.decode((2, 1)) == (4, 2)

    def test_discrete_decode_clips_out_of_range(self):
        space = DiscreteFactorSpace()
        assert space.decode((99, -3)) == (64, 1)

    def test_discrete_encode_round_trip(self):
        space = DiscreteFactorSpace()
        for vf in space.vf_values:
            for interleave in space.if_values:
                assert space.decode(space.encode(vf, interleave)) == (vf, interleave)

    def test_num_factor_pairs_is_35(self):
        assert default_action_space().num_factor_pairs == 35

    def test_continuous_joint_covers_extremes(self):
        space = ContinuousJointSpace()
        assert space.decode([0.0]) == (1, 1)
        assert space.decode([1.0]) == (64, 16)

    def test_continuous_joint_round_trip(self):
        space = ContinuousJointSpace()
        for vf in (1, 4, 64):
            for interleave in (1, 8):
                assert space.decode(space.encode(vf, interleave)) == (vf, interleave)

    def test_continuous_pair_round_trip(self):
        space = ContinuousPairSpace()
        for vf in (2, 16):
            for interleave in (2, 16):
                assert space.decode(space.encode(vf, interleave)) == (vf, interleave)

    def test_continuous_values_are_clipped(self):
        space = ContinuousPairSpace()
        assert space.decode([5.0, -2.0]) == (64, 1)


class TestRoundingTieBreaks:
    """Menu-midpoint rounding is pinned: ties resolve to the smaller factor."""

    def test_pair_space_if_midpoints_round_down(self):
        # The IF menu (1, 2, 4, 8, 16) has 4 intervals, so the raw values
        # (k + 0.5) / 4 land exactly between indices k and k + 1.
        space = ContinuousPairSpace()
        for k, smaller in enumerate((1, 2, 4, 8)):
            value = (k + 0.5) / 4
            assert space.decode([0.0, value])[1] == smaller

    def test_pair_space_vf_midpoints_round_down(self):
        space = ContinuousPairSpace()
        for k, smaller in enumerate((1, 2, 4, 8, 16, 32)):
            value = (k + 0.5) / 6
            scaled = value * 6
            assert scaled == k + 0.5  # the boundary is exact in float
            assert space.decode([value, 0.0])[0] == smaller

    def test_joint_space_midpoints_round_down(self):
        space = ContinuousJointSpace()
        actions = space.all_actions()
        for k in (0, 1, 4, 17, 33):  # includes the 1/2 and 2/4 boundaries
            value = (k + 0.5) / (space.num_actions - 1)
            assert space.decode([value]) == actions[k]

    def test_encode_equidistant_targets_pick_smaller_factor(self):
        space = DiscreteFactorSpace()
        # 3 is exactly between menu entries 2 and 4; 12 between 8 and 16.
        assert space.decode(space.encode(3, 3)) == (2, 2)
        assert space.decode(space.encode(12, 12)) == (8, 8)
        joint = ContinuousJointSpace()
        assert joint.decode(joint.encode(3, 12)) == (2, 8)
        pair = ContinuousPairSpace()
        assert pair.decode(pair.encode(48, 3)) == (32, 2)


class TestEnvironment:
    def test_reset_returns_embedding(self, tiny_env):
        observation = tiny_env.reset()
        assert observation.shape == (tiny_env.observation_dim,)

    def test_step_requires_reset(self, tiny_env):
        tiny_env.reset()
        tiny_env.step((2, 1))
        with pytest.raises(RuntimeError):
            tiny_env.step((2, 1))

    def test_baseline_action_gives_zero_reward(self, tiny_env):
        sample = tiny_env.samples[0]
        pipeline = tiny_env.pipeline
        baseline = pipeline.measure_baseline(sample.kernel)
        factors = baseline.factors[sample.loop_index]
        reward, _ = tiny_env.evaluate_factors(sample, *factors)
        assert reward == pytest.approx(0.0, abs=1e-9)

    def test_scalar_action_usually_negative(self, tiny_env):
        rewards = [
            tiny_env.evaluate_factors(sample, 1, 1)[0] for sample in tiny_env.samples
        ]
        assert min(rewards) < 0

    def test_reward_cache_hits(self, tiny_env):
        sample = tiny_env.samples[0]
        tiny_env.evaluate_factors(sample, 8, 2)
        _, info = tiny_env.evaluate_factors(sample, 8, 2)
        assert info.get("cached") == 1.0

    def test_all_samples_visited_before_repeat(self):
        kernels = _tiny_kernels()
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels)
        samples = build_samples(kernels, embedding, pipeline)
        env = VectorizationEnv(samples, pipeline=pipeline, shuffle=False, seed=0)
        names = set()
        for _ in range(len(samples)):
            env.reset()
            names.add(env.current_sample().kernel.name)
            env.step((0, 0))
        assert len(names) == len({s.kernel.name for s in samples})

    def test_compile_time_penalty_applied(self):
        kernels = [
            LoopKernel(
                name="wide_double",
                source=(
                    "double a[8192], b[8192], c[8192], d[8192], e[8192], f2[8192];\n"
                    "void kernel() { for (int i = 0; i < 8192; i++)"
                    " f2[i] = a[i] * b[i] + c[i] * d[i] + e[i] * f2[i] + a[i] * c[i]; }"
                ),
                function_name="kernel",
            )
        ]
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels)
        samples = build_samples(kernels, embedding, pipeline)
        env = VectorizationEnv(
            samples, pipeline=pipeline, compile_time_limit=2.0, compile_time_penalty=-9.0
        )
        reward, info = env.evaluate_factors(samples[0], 64, 16)
        assert reward == -9.0
        assert info.get("compile_time_exceeded") == 1.0

    def test_env_requires_samples(self):
        with pytest.raises(ValueError):
            VectorizationEnv([])


class TestPolicies:
    def test_discrete_policy_act_shapes(self):
        policy = DiscretePolicy(observation_dim=16, seed=0)
        output = policy.act(np.zeros(16))
        assert output.action.shape == (2,)
        assert isinstance(output.log_prob, float)

    def test_discrete_policy_deterministic_is_argmax(self):
        policy = DiscretePolicy(observation_dim=8, seed=0)
        observation = np.random.default_rng(0).normal(size=8)
        first = policy.act(observation, deterministic=True).action
        second = policy.act(observation, deterministic=True).action
        assert np.array_equal(first, second)

    def test_discrete_policy_evaluate_shapes(self):
        policy = DiscretePolicy(observation_dim=8, seed=0)
        observations = np.zeros((5, 8))
        actions = np.zeros((5, 2))
        log_probs, entropy, values = policy.evaluate(observations, actions)
        assert log_probs.shape == (5,)
        assert entropy.shape == (5,)
        assert values.shape == (5,)

    def test_continuous_policy_action_in_unit_interval(self):
        policy = ContinuousPolicy(observation_dim=8, action_dims=2, seed=0)
        output = policy.act(np.zeros(8))
        assert np.all(output.action >= 0.0) and np.all(output.action <= 1.0)

    def test_make_policy_factory(self):
        assert isinstance(make_policy("discrete", 8), DiscretePolicy)
        assert make_policy("continuous1", 8).action_dims == 1
        assert make_policy("continuous2", 8).action_dims == 2
        with pytest.raises(ValueError):
            make_policy("bogus", 8)

    def test_policy_hidden_sizes_configurable(self):
        small = DiscretePolicy(observation_dim=8, hidden_sizes=(32, 32))
        large = DiscretePolicy(observation_dim=8, hidden_sizes=(128, 128))
        assert large.num_parameters() > small.num_parameters()


class TestPPO:
    def test_training_improves_greedy_reward(self, tiny_env):
        policy = DiscretePolicy(tiny_env.observation_dim, seed=1)
        before = float(np.mean(tiny_env.greedy_rewards(policy)))
        trainer = PPOTrainer(
            tiny_env,
            policy,
            PPOConfig(learning_rate=1e-3, train_batch_size=48, minibatch_size=24,
                      epochs_per_batch=4),
        )
        history = trainer.train(total_steps=480, batch_size=48)
        after = float(np.mean(tiny_env.greedy_rewards(policy)))
        assert len(history.iterations) == 10
        assert after > before

    def test_history_reward_curve_monotone_steps(self, tiny_env):
        policy = DiscretePolicy(tiny_env.observation_dim, seed=2)
        trainer = PPOTrainer(tiny_env, policy, PPOConfig(train_batch_size=24,
                                                         minibatch_size=12,
                                                         epochs_per_batch=2,
                                                         learning_rate=1e-3))
        history = trainer.train(total_steps=72, batch_size=24)
        steps = history.steps()
        assert steps == sorted(steps)
        assert history.final_reward_mean == history.reward_curve()[-1]

    def test_continuous_policy_trains_without_error(self, tiny_env):
        policy = make_policy("continuous1", tiny_env.observation_dim, seed=0)
        trainer = PPOTrainer(tiny_env, policy, PPOConfig(train_batch_size=24,
                                                         minibatch_size=12,
                                                         epochs_per_batch=2,
                                                         learning_rate=1e-3))
        history = trainer.train(total_steps=48, batch_size=24)
        assert len(history.iterations) == 2

    def test_trainer_sets_env_action_space(self, tiny_env):
        policy = make_policy("continuous2", tiny_env.observation_dim, seed=0)
        PPOTrainer(tiny_env, policy, PPOConfig())
        assert isinstance(tiny_env.action_space, ContinuousPairSpace)
        # restore the discrete space for other tests in this module
        PPOTrainer(tiny_env, make_policy("discrete", tiny_env.observation_dim), PPOConfig())

    def test_config_scaled(self):
        config = PPOConfig(learning_rate=1e-4)
        scaled = config.scaled(learning_rate=5e-3, train_batch_size=10)
        assert scaled.learning_rate == 5e-3
        assert scaled.train_batch_size == 10
        assert config.learning_rate == 1e-4


class TestTune:
    def test_grid_search_expansion(self):
        grid = grid_search({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(grid) == 6
        assert {"a": 1, "b": "x"} in grid

    def test_grid_search_empty(self):
        assert grid_search({}) == [{}]

    def test_run_experiments_and_best(self, tiny_env):
        def make_env():
            return tiny_env

        results = run_experiments(
            make_env,
            {"learning_rate": [1e-3, 1e-4]},
            total_steps=48,
            base_config=PPOConfig(train_batch_size=24, minibatch_size=12,
                                  epochs_per_batch=2),
        )
        assert len(results) == 2
        assert all(result.history.iterations for result in results)
        best = best_experiment(results)
        assert best.final_reward_mean == max(r.final_reward_mean for r in results)
