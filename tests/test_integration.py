"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.core.framework import NeuroVectorizer, TrainingConfig
from repro.datasets import SyntheticDatasetConfig, generate_synthetic_dataset
from repro.datasets import test_benchmarks as held_out_benchmarks
from repro.datasets.motivating import dot_product_kernel
from repro.evaluation import figure1_dot_product_grid, figure2_bruteforce_suite
from repro.evaluation.comparison import compare_methods, train_reference_agents
from repro.evaluation.report import format_speedup_table, geometric_mean


class TestFigureShapes:
    """Fast sanity checks that the headline result shapes hold."""

    def test_figure1_shape(self):
        result = figure1_dot_product_grid()
        # The paper: baseline picks (4, 2); a majority of factor pairs beat it;
        # the best pair is clearly better than the baseline's choice.
        assert result.baseline_factors == (4, 2)
        assert result.fraction_better_than_baseline > 0.5
        assert result.best_speedup > 1.1
        assert len(result.grid) == 35
        assert result.grid[result.baseline_factors] == pytest.approx(1.0, rel=1e-9)

    def test_figure2_shape(self):
        result = figure2_bruteforce_suite()
        # Brute force never loses to the baseline, and there is clear headroom.
        assert all(value >= 0.999 for value in result.speedups.values())
        assert result.average > 1.2
        assert result.maximum > 1.5


class TestEndToEndTraining:
    @pytest.fixture(scope="class")
    def trained(self):
        kernels = list(generate_synthetic_dataset(SyntheticDatasetConfig(count=40, seed=0)))
        return train_reference_agents(
            kernels, rl_steps=900, rl_batch_size=150, learning_rate=5e-4,
            pretrain_epochs=0, seed=0,
        )

    def test_rl_policy_learns_positive_reward(self, trained):
        history = trained.history
        assert history.final_reward_mean > history.reward_curve()[0]

    def test_method_ordering_on_held_out_benchmarks(self, trained):
        comparison = compare_methods(
            list(held_out_benchmarks())[:6], trained, include_polly=False,
            include_supervised=False,
        )
        rl = comparison.average("rl")
        brute = comparison.average("brute_force")
        assert brute >= rl >= 0.9
        assert brute > 1.2

    def test_speedup_table_renders(self, trained):
        comparison = compare_methods(
            list(held_out_benchmarks())[:3], trained, include_polly=False,
            include_supervised=False,
        )
        table = format_speedup_table(comparison.speedups, comparison.methods)
        text = table.render()
        assert "geomean" in text
        assert "brute_force" in text


class TestFrameworkTraining:
    def test_train_classmethod_produces_working_framework(self):
        kernels = list(generate_synthetic_dataset(SyntheticDatasetConfig(count=15, seed=2)))
        framework, artifacts = NeuroVectorizer.train(
            kernels,
            TrainingConfig(rl_total_steps=200, rl_batch_size=50, pretrain_epochs=0,
                           learning_rate=1e-3),
        )
        assert artifacts.history is not None
        result = framework.vectorize_kernel(dot_product_kernel())
        assert result.cycles > 0
        assert len(result.decisions) == 1

    def test_default_framework_runs_end_to_end(self):
        framework = NeuroVectorizer.default()
        result = framework.vectorize_kernel(dot_product_kernel())
        assert result.speedup_over_baseline == pytest.approx(1.0, rel=1e-6)


class TestReportHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) != geometric_mean([])  # NaN

    def test_geometric_mean_ignores_non_positive(self):
        assert geometric_mean([4.0, 0.0, -1.0]) == pytest.approx(4.0)
