"""Autodiff / neural-network library tests (including gradient checks)."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    MLP,
    SGD,
    Tensor,
    categorical_entropy,
    categorical_log_prob,
    cross_entropy_loss,
    gaussian_entropy,
    gaussian_log_prob,
    mse_loss,
    no_grad,
    ops,
)


def numeric_gradient(function, array, epsilon=1e-6):
    gradient = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = function()
        flat[index] = original - epsilon
        minus = function()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return gradient


class TestTensorBasics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_simple_chain_gradient(self):
        x = Tensor(3.0, requires_grad=True)
        y = (x * x) + x
        y.backward()
        assert x.grad == pytest.approx(7.0)

    def test_gradient_accumulates_across_uses(self):
        x = Tensor(2.0, requires_grad=True)
        y = x + x
        y.backward()
        assert x.grad == pytest.approx(2.0)

    def test_no_grad_disables_graph(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            y = x * 5
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor(2.0, requires_grad=True)
        assert not x.detach().requires_grad

    def test_broadcast_gradient_unbroadcasts(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        loss = ops.sum(x + b)
        loss.backward()
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)


class TestGradientChecks:
    @pytest.mark.parametrize(
        "operation",
        ["matmul_tanh", "softmax", "log_softmax", "div", "exp_log", "clip", "minmax"],
    )
    def test_against_numeric_gradient(self, operation):
        rng = np.random.default_rng(0)
        a_data = rng.normal(size=(4, 3))
        b_data = rng.normal(size=(3, 2))
        # Snapshot the div denominator once: if it were rebuilt from a_data
        # inside build(), the numeric check would measure the total derivative
        # through the denominator, which no autodiff graph over `a` alone can
        # match (the denominator tensor is a detached constant).
        div_denominator = np.abs(a_data) + 1.0

        def build():
            a = Tensor(a_data, requires_grad=True)
            b = Tensor(b_data, requires_grad=True)
            if operation == "matmul_tanh":
                out = ops.sum(ops.tanh(ops.matmul(a, b)))
            elif operation == "softmax":
                out = ops.sum(ops.mul(ops.softmax(a, axis=-1), Tensor(a_data * 0 + 0.3)))
            elif operation == "log_softmax":
                out = ops.sum(ops.log_softmax(a, axis=-1))
            elif operation == "div":
                out = ops.sum(ops.div(a, Tensor(div_denominator)))
            elif operation == "exp_log":
                out = ops.sum(ops.log(ops.exp(a)))
            elif operation == "clip":
                out = ops.sum(ops.clip(a, -0.5, 0.5))
            elif operation == "minmax":
                out = ops.sum(ops.maximum(a, ops.minimum(a, Tensor(a_data * 0))))
            return a, out

        a, out = build()
        out.backward()
        analytic = a.grad.copy()

        def value():
            _, result = build()
            return float(result.item())

        numeric = numeric_gradient(value, a_data)
        assert np.max(np.abs(numeric - analytic)) < 1e-5

    def test_gather_rows_gradient(self):
        table_data = np.random.default_rng(1).normal(size=(5, 3))
        indices = np.array([0, 2, 2, 4])
        table = Tensor(table_data, requires_grad=True)
        out = ops.sum(ops.gather_rows(table, indices))
        out.backward()
        expected = np.zeros_like(table_data)
        np.add.at(expected, indices, 1.0)
        assert np.allclose(table.grad, expected)

    def test_take_along_last_axis_gradient(self):
        logits = Tensor(np.zeros((3, 4)), requires_grad=True)
        picked = ops.take_along_last_axis(logits, np.array([1, 2, 0]))
        ops.sum(picked).backward()
        assert logits.grad.sum() == pytest.approx(3.0)
        assert logits.grad[0, 1] == 1.0

    def test_concatenate_gradient_splits(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        out = ops.sum(ops.concatenate([a, b], axis=1))
        out.backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (2, 2)


class TestLayersAndTraining:
    def test_mlp_shapes(self):
        mlp = MLP(10, [64, 64], 3, rng=np.random.default_rng(0))
        output = mlp(Tensor(np.zeros((5, 10))))
        assert output.shape == (5, 3)
        assert mlp.num_parameters() == 10 * 64 + 64 + 64 * 64 + 64 + 64 * 3 + 3

    def test_dense_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            Dense(2, 2, activation="swish")

    def test_state_dict_round_trip(self):
        mlp = MLP(4, [8], 2, rng=np.random.default_rng(0))
        other = MLP(4, [8], 2, rng=np.random.default_rng(99))
        other.load_state_dict(mlp.state_dict())
        x = Tensor(np.random.default_rng(2).normal(size=(3, 4)))
        assert np.allclose(mlp(x).numpy(), other(x).numpy())

    def test_load_state_dict_shape_mismatch(self):
        mlp = MLP(4, [8], 2)
        wrong = MLP(4, [16], 2)
        with pytest.raises(ValueError):
            mlp.load_state_dict(wrong.state_dict())

    def test_adam_fits_regression(self):
        rng = np.random.default_rng(0)
        mlp = MLP(2, [32], 1, rng=rng)
        optimizer = Adam(mlp.parameters(), learning_rate=1e-2)
        inputs = rng.normal(size=(128, 2))
        targets = (inputs[:, :1] * 2 - inputs[:, 1:] * 0.5)
        losses = []
        for _ in range(200):
            prediction = mlp(Tensor(inputs))
            loss = mse_loss(prediction, Tensor(targets))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < 0.05
        assert losses[-1] < losses[0] / 10

    def test_sgd_momentum_reduces_loss(self):
        rng = np.random.default_rng(1)
        mlp = MLP(2, [16], 1, rng=rng)
        optimizer = SGD(mlp.parameters(), learning_rate=1e-2, momentum=0.9)
        inputs = rng.normal(size=(64, 2))
        targets = inputs.sum(axis=1, keepdims=True)
        first = None
        for _ in range(150):
            loss = mse_loss(mlp(Tensor(inputs)), Tensor(targets))
            if first is None:
                first = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < first

    def test_gradient_clipping(self):
        parameter = Dense(2, 2).weight
        parameter.grad = np.full((2, 2), 100.0)
        optimizer = SGD([parameter], learning_rate=1.0)
        norm = optimizer.clip_gradients(1.0)
        assert norm > 1.0
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0, rel=1e-6)

    def test_classification_learns(self):
        rng = np.random.default_rng(3)
        inputs = rng.normal(size=(200, 2))
        labels = (inputs[:, 0] > 0).astype(int)
        model = MLP(2, [16], 2, rng=rng)
        optimizer = Adam(model.parameters(), learning_rate=5e-3)
        for _ in range(150):
            loss = cross_entropy_loss(model(Tensor(inputs)), labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        accuracy = (np.argmax(model(Tensor(inputs)).numpy(), axis=1) == labels).mean()
        assert accuracy > 0.9


class TestDistributions:
    def test_categorical_log_prob_matches_manual(self):
        logits = Tensor(np.array([[1.0, 2.0, 0.5]]))
        log_prob = categorical_log_prob(logits, np.array([1]))
        manual = np.log(np.exp(2.0) / np.exp([1.0, 2.0, 0.5]).sum())
        assert log_prob.numpy()[0] == pytest.approx(manual)

    def test_categorical_entropy_uniform_is_maximal(self):
        uniform = categorical_entropy(Tensor(np.zeros((1, 4))))
        peaked = categorical_entropy(Tensor(np.array([[10.0, 0.0, 0.0, 0.0]])))
        assert uniform.numpy()[0] > peaked.numpy()[0]
        assert uniform.numpy()[0] == pytest.approx(np.log(4), rel=1e-6)

    def test_gaussian_log_prob_peak_at_mean(self):
        mean = Tensor(np.array([[0.5]]))
        log_std = Tensor(np.array([0.0]))
        at_mean = gaussian_log_prob(mean, log_std, np.array([[0.5]])).numpy()[0]
        away = gaussian_log_prob(mean, log_std, np.array([[2.0]])).numpy()[0]
        assert at_mean > away

    def test_gaussian_entropy_grows_with_std(self):
        small = gaussian_entropy(Tensor(np.array([-1.0]))).item()
        large = gaussian_entropy(Tensor(np.array([1.0]))).item()
        assert large > small
