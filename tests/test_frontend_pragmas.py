"""Loop pragma parsing/formatting tests."""

import pytest

from repro.frontend.pragmas import LoopPragma, format_pragma, parse_pragma_text


class TestParsing:
    def test_full_pragma(self):
        pragma = parse_pragma_text(
            "#pragma clang loop vectorize_width(8) interleave_count(4)"
        )
        assert pragma.vectorize_width == 8
        assert pragma.interleave_count == 4

    def test_only_width(self):
        pragma = parse_pragma_text("#pragma clang loop vectorize_width(16)")
        assert pragma.vectorize_width == 16
        assert pragma.interleave_count is None

    def test_enable_clause(self):
        pragma = parse_pragma_text("#pragma clang loop vectorize(enable)")
        assert pragma.vectorize_enable is True

    def test_disable_clause(self):
        pragma = parse_pragma_text("#pragma clang loop vectorize(disable)")
        assert pragma.vectorize_enable is False

    def test_non_loop_pragma_returns_none(self):
        assert parse_pragma_text("#pragma omp parallel for") is None

    def test_non_pragma_line_returns_none(self):
        assert parse_pragma_text("int x = 3;") is None

    def test_whitespace_tolerance(self):
        pragma = parse_pragma_text("  #  pragma   clang loop vectorize_width( 4 )")
        assert pragma.vectorize_width == 4

    def test_zero_width_rejected(self):
        pragma = parse_pragma_text("#pragma clang loop vectorize_width(0)")
        assert pragma.vectorize_width is None

    def test_unroll_clause_ignored(self):
        pragma = parse_pragma_text("#pragma clang loop unroll_count(4) vectorize_width(2)")
        assert pragma.vectorize_width == 2


class TestFormatting:
    def test_round_trip(self):
        original = LoopPragma(vectorize_width=32, interleave_count=8)
        parsed = parse_pragma_text(format_pragma(original))
        assert parsed == original

    def test_format_matches_paper_syntax(self):
        text = format_pragma(LoopPragma(vectorize_width=4, interleave_count=2))
        assert text == "#pragma clang loop vectorize_width(4) interleave_count(2)"

    def test_format_disable(self):
        text = format_pragma(LoopPragma(vectorize_enable=False))
        assert "vectorize(disable)" in text

    def test_is_empty(self):
        assert LoopPragma().is_empty
        assert not LoopPragma(vectorize_width=2).is_empty


class TestMerging:
    def test_merge_prefers_other(self):
        first = LoopPragma(vectorize_width=4)
        second = LoopPragma(vectorize_width=8, interleave_count=2)
        merged = first.merged_with(second)
        assert merged.vectorize_width == 8
        assert merged.interleave_count == 2

    def test_merge_keeps_missing_fields(self):
        first = LoopPragma(vectorize_width=4, interleave_count=2)
        second = LoopPragma(interleave_count=8)
        merged = first.merged_with(second)
        assert merged.vectorize_width == 4
        assert merged.interleave_count == 8
