"""code2vec embedding pipeline tests."""

import numpy as np
import pytest

from repro.analysis.loopinfo import analyze_loop
from repro.core.loop_extractor import extract_loops
from repro.embedding.ast_paths import PathContext, extract_path_contexts, loop_tokens
from repro.embedding.code2vec import Code2VecConfig, Code2VecModel
from repro.embedding.pretrain import Code2VecPretrainer, loop_property_labels
from repro.embedding.vocab import Vocabulary, build_vocabularies, normalize_identifiers
from repro.frontend import parse_source
from repro.ir.lowering import lower_unit


LOOP_SOURCE = """
int a[64], b[64];
void f(int m) {
    for (int i = 0; i < 64; i++) {
        int j = a[i];
        b[i] = (j > m ? m : 0);
    }
}
"""


def _loop_ast(source=LOOP_SOURCE):
    loops = extract_loops(source)
    return loops[0].nest_root


class TestPathExtraction:
    def test_contexts_are_extracted(self):
        contexts = extract_path_contexts(_loop_ast())
        assert len(contexts) > 10
        assert all(isinstance(context, PathContext) for context in contexts)

    def test_paths_strip_identifier_payloads(self):
        contexts = extract_path_contexts(_loop_ast())
        assert all("Name:" not in context.path for context in contexts)

    def test_max_contexts_respected(self):
        contexts = extract_path_contexts(_loop_ast(), max_contexts=7)
        assert len(contexts) <= 7

    def test_max_path_length_filters_long_paths(self):
        long_paths = extract_path_contexts(_loop_ast(), max_path_length=20)
        short_paths = extract_path_contexts(_loop_ast(), max_path_length=4)
        assert len(short_paths) <= len(long_paths)

    def test_rename_map_applied_to_tokens(self):
        root = _loop_ast()
        rename = normalize_identifiers(root)
        contexts = extract_path_contexts(root, rename_map=rename)
        tokens = {c.start_token for c in contexts} | {c.end_token for c in contexts}
        assert not ({"a", "b"} & tokens)
        assert any(token.startswith("arr") for token in tokens)

    def test_loop_tokens_in_source_order(self):
        tokens = loop_tokens(_loop_ast())
        assert "i" in tokens and "64" in tokens

    def test_identical_loops_with_renamed_vars_share_contexts(self):
        other = LOOP_SOURCE.replace("a[", "src[").replace("b[", "dst[").replace(
            "int a[64], b[64];", "int src[64], dst[64];"
        )
        first_root = _loop_ast()
        second_root = _loop_ast(other)
        first = extract_path_contexts(first_root, rename_map=normalize_identifiers(first_root))
        second = extract_path_contexts(second_root, rename_map=normalize_identifiers(second_root))
        assert {str(c) for c in first} == {str(c) for c in second}


class TestVocabulary:
    def test_unknown_maps_to_unk(self):
        vocabulary = Vocabulary()
        vocabulary.add("x")
        assert vocabulary.lookup("x") == 1
        assert vocabulary.lookup("never_seen") == 0

    def test_add_is_idempotent(self):
        vocabulary = Vocabulary()
        first = vocabulary.add("x")
        second = vocabulary.add("x")
        assert first == second
        assert len(vocabulary) == 2

    def test_build_vocabularies_from_corpus(self):
        bags = [extract_path_contexts(_loop_ast())]
        tokens, paths = build_vocabularies(bags)
        assert len(tokens) > 1
        assert len(paths) > 1

    def test_normalize_identifiers_arrays_before_scalars(self):
        mapping = normalize_identifiers(_loop_ast())
        assert mapping["a"].startswith("arr")
        assert mapping["b"].startswith("arr")
        assert mapping["i"].startswith("var")


class TestCode2VecModel:
    def _model(self, dim=64):
        bags = [extract_path_contexts(_loop_ast())]
        tokens, paths = build_vocabularies(bags)
        return Code2VecModel(tokens, paths, Code2VecConfig(code_vector_dim=dim)), bags[0]

    def test_embedding_has_requested_dimension(self):
        model, contexts = self._model(340)
        vector = model.embed(contexts)
        assert vector.shape == (340,)

    def test_embedding_is_deterministic(self):
        model, contexts = self._model()
        assert np.allclose(model.embed(contexts), model.embed(contexts))

    def test_empty_context_bag_embeds_to_vector(self):
        model, _ = self._model()
        vector = model.embed([])
        assert vector.shape == (model.config.code_vector_dim,)

    def test_attention_weights_sum_to_one(self):
        model, contexts = self._model()
        weights = model.attention_weights(contexts)
        assert weights.shape[0] == min(len(contexts), model.config.max_contexts)
        assert weights.sum() == pytest.approx(1.0)

    def test_different_loops_embed_differently(self):
        model, contexts = self._model()
        other_root = _loop_ast(
            "float x[64], y[64];\nvoid g(float a) {"
            " for (int i = 0; i < 64; i++) y[i] = a * x[i] + y[i]; }"
        )
        other = extract_path_contexts(other_root)
        assert not np.allclose(model.embed(contexts), model.embed(other))

    def test_embed_batch_shape(self):
        model, contexts = self._model()
        batch = model.embed_batch([contexts, contexts[:5]])
        assert batch.shape == (2, model.config.code_vector_dim)


class TestPretraining:
    def test_labels_derived_from_analysis(self):
        functions = lower_unit(parse_source(LOOP_SOURCE))
        function = functions["f"]
        labels = loop_property_labels(analyze_loop(function, function.innermost_loops()[0]))
        assert labels.has_reduction == 0
        assert labels.nest_depth == 0
        assert labels.element_width == 2  # 32-bit

    def test_reduction_label(self):
        source = (
            "float a[64];\nfloat f() { float s = 0;"
            " for (int i = 0; i < 64; i++) s += a[i]; return s; }"
        )
        function = lower_unit(parse_source(source))["f"]
        labels = loop_property_labels(analyze_loop(function, function.innermost_loops()[0]))
        assert labels.has_reduction == 1
        assert labels.is_float == 1

    def test_pretraining_reduces_loss(self):
        sources = [
            LOOP_SOURCE,
            "float a[64];\nfloat f() { float s = 0;"
            " for (int i = 0; i < 64; i++) s += a[i]; return s; }",
            "float x[64], y[64];\nvoid g(float a) {"
            " for (int i = 0; i < 64; i++) y[i] = a * x[i] + y[i]; }",
        ]
        bags, labels = [], []
        for source in sources:
            root = extract_loops(source)[0].nest_root
            bags.append(extract_path_contexts(root, rename_map=normalize_identifiers(root)))
            functions = lower_unit(parse_source(source))
            function = next(iter(functions.values()))
            labels.append(
                loop_property_labels(analyze_loop(function, function.innermost_loops()[0]))
            )
        tokens, paths = build_vocabularies(bags)
        model = Code2VecModel(tokens, paths, Code2VecConfig(code_vector_dim=64))
        pretrainer = Code2VecPretrainer(model, learning_rate=5e-3, seed=0)
        result = pretrainer.train(bags, labels, epochs=10)
        first_epoch = np.mean(result.losses[: len(sources)])
        last_epoch = np.mean(result.losses[-len(sources):])
        assert last_epoch < first_epoch
        accuracy = pretrainer.evaluate(bags, labels)
        assert accuracy["has_reduction"] >= 2 / 3
