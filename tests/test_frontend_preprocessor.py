"""Preprocessor tests."""

import pytest

from repro.frontend.preprocessor import PRAGMA_MARKER, Preprocessor, preprocess, strip_comments


class TestComments:
    def test_line_comment_removed(self):
        assert strip_comments("int x; // comment\nint y;") == "int x; \nint y;"

    def test_block_comment_removed(self):
        assert strip_comments("a /* comment */ b") == "a  b"

    def test_multiline_block_comment_preserves_lines(self):
        text = strip_comments("a /* one\ntwo */ b")
        assert text.count("\n") == 1

    def test_comment_inside_string_kept(self):
        assert strip_comments('s = "// not a comment";') == 's = "// not a comment";'

    def test_nested_slashes(self):
        assert strip_comments("a / b") == "a / b"


class TestDefines:
    def test_object_macro_expansion(self):
        text, _ = preprocess("#define N 512\nint a[N];")
        assert "int a[512];" in text

    def test_macro_used_in_expression(self):
        text, _ = preprocess("#define N 16\nfor (i = 0; i < N*2; i++) {}")
        assert "16*2" in text or "16 *2" in text or "16* 2" in text

    def test_chained_macros(self):
        text, _ = preprocess("#define A 4\n#define B A\nint x = B;")
        assert "int x = 4;" in text

    def test_undef_removes_macro(self):
        text, _ = preprocess("#define N 4\n#undef N\nint x = N;")
        assert "int x = N;" in text

    def test_predefined_macros(self):
        text, _ = preprocess("int a[N];", defines={"N": "128"})
        assert "int a[128];" in text

    def test_macro_does_not_expand_inside_longer_identifier(self):
        text, _ = preprocess("#define N 4\nint NN = 2;")
        assert "NN = 2" in text

    def test_function_like_macro_warns_and_is_dropped(self):
        engine = Preprocessor()
        engine.process("#define MAX(a,b) ((a)>(b)?(a):(b))\nint x;")
        assert any("function-like" in warning for warning in engine.warnings)


class TestDirectives:
    def test_include_removed(self):
        text, _ = preprocess("#include <stdio.h>\nint x;")
        assert "stdio" not in text

    def test_pragma_becomes_marker(self):
        text, _ = preprocess("#pragma clang loop vectorize_width(8)\nfor(;;);")
        assert PRAGMA_MARKER in text

    def test_line_count_preserved(self):
        source = "#define N 4\nint a[N];\n// c\nint b;"
        text, _ = preprocess(source)
        assert text.count("\n") == source.count("\n")

    def test_ifdef_recorded_as_warning(self):
        engine = Preprocessor()
        engine.process("#ifdef FOO\nint x;\n#endif")
        assert len(engine.warnings) >= 1
