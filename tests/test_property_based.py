"""Property-based tests (hypothesis) over core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.affine import affine_of
from repro.analysis.dependence import analyze_dependences, max_safe_vf
from repro.analysis.loopinfo import analyze_loop
from repro.frontend import parse_source
from repro.frontend.pragmas import LoopPragma, format_pragma, parse_pragma_text
from repro.ir.evaluate import evaluate_expr, trip_count_of
from repro.ir.expr import BinOp, Const, ScalarRef
from repro.ir.lowering import lower_unit
from repro.machine.description import MachineDescription
from repro.nn import Tensor, ops
from repro.rl.spaces import ContinuousJointSpace, ContinuousPairSpace, DiscreteFactorSpace
from repro.simulator.cost import estimate_loop_cost, estimate_working_set
from repro.vectorizer.legality import check_legality
from repro.vectorizer.planner import make_loop_plan

_SETTINGS = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

power_of_two = st.sampled_from([1, 2, 4, 8, 16, 32, 64])
interleave_values = st.sampled_from([1, 2, 4, 8, 16])


class TestPragmaProperties:
    @_SETTINGS
    @given(vf=power_of_two, interleave=interleave_values)
    def test_pragma_format_parse_round_trip(self, vf, interleave):
        pragma = LoopPragma(vectorize_width=vf, interleave_count=interleave)
        assert parse_pragma_text(format_pragma(pragma)) == pragma


class TestAffineProperties:
    @_SETTINGS
    @given(coefficient=st.integers(-16, 16), constant=st.integers(-64, 64))
    def test_linear_expression_coefficients_recovered(self, coefficient, constant):
        expr = BinOp(
            op="+",
            lhs=BinOp(op="*", lhs=Const(value=coefficient), rhs=ScalarRef(name="i")),
            rhs=Const(value=constant),
        )
        form = affine_of(expr, ["i"])
        assert form.is_affine
        assert form.coefficient("i") == coefficient
        assert form.constant == constant

    @_SETTINGS
    @given(a=st.integers(-20, 20), b=st.integers(-20, 20), i=st.integers(0, 50))
    def test_affine_form_evaluates_like_expression(self, a, b, i):
        expr = BinOp(
            op="+",
            lhs=BinOp(op="*", lhs=Const(value=a), rhs=ScalarRef(name="i")),
            rhs=Const(value=b),
        )
        form = affine_of(expr, ["i"])
        assert form.coefficient("i") * i + form.constant == evaluate_expr(expr, {"i": i})


class TestTripCountProperties:
    @_SETTINGS
    @given(lower=st.integers(0, 100), extent=st.integers(0, 1000), step=st.integers(1, 8))
    def test_trip_count_matches_python_range(self, lower, extent, step):
        upper = lower + extent
        expected = len(range(lower, upper, step))
        assert trip_count_of(Const(value=lower), Const(value=upper), step) == expected


class TestSpacesProperties:
    @_SETTINGS
    @given(vf=power_of_two, interleave=interleave_values)
    def test_discrete_space_round_trip(self, vf, interleave):
        space = DiscreteFactorSpace()
        assert space.decode(space.encode(vf, interleave)) == (vf, interleave)

    @_SETTINGS
    @given(vf=power_of_two, interleave=interleave_values)
    def test_continuous_spaces_round_trip(self, vf, interleave):
        for space in (ContinuousJointSpace(), ContinuousPairSpace()):
            assert space.decode(space.encode(vf, interleave)) == (vf, interleave)

    @_SETTINGS
    @given(value=st.floats(min_value=-2.0, max_value=3.0, allow_nan=False))
    def test_continuous_joint_always_decodes_to_menu(self, value):
        space = ContinuousJointSpace()
        vf, interleave = space.decode([value])
        assert vf in space.vf_values
        assert interleave in space.if_values


class TestPlannerProperties:
    SOURCES = [
        "float a[256], b[256];\nvoid f() { for (int i = 0; i < 256; i++) a[i] = b[i]; }",
        "float a[256];\nvoid f() { for (int i = 8; i < 256; i++) a[i] = a[i-8]; }",
        "float a[256];\nfloat f() { float s = 0; for (int i = 0; i < 256; i++) s += a[i]; return s; }",
    ]

    @_SETTINGS
    @given(
        source_index=st.integers(0, 2),
        vf=st.integers(1, 200),
        interleave=st.integers(1, 64),
    )
    def test_effective_factors_always_legal_powers_of_two(self, source_index, vf, interleave):
        machine = MachineDescription()
        function = lower_unit(parse_source(self.SOURCES[source_index]))["f"]
        loop = function.innermost_loops()[0]
        plan = make_loop_plan(function, loop, vf, interleave, machine)
        assert plan.vf & (plan.vf - 1) == 0  # power of two
        assert plan.interleave & (plan.interleave - 1) == 0
        assert plan.vf <= plan.legality.max_vf
        assert plan.vf <= machine.max_vectorize_width
        assert plan.interleave <= machine.max_interleave
        assert plan.vf <= max(vf, 1)


class TestSimulatorProperties:
    @_SETTINGS
    @given(vf=power_of_two, interleave=interleave_values, trip=st.integers(1, 5000))
    def test_loop_cost_is_positive_and_accounts_every_element(self, vf, interleave, trip):
        machine = MachineDescription()
        function = lower_unit(parse_source(
            "float a[8192], b[8192];\nvoid f() { for (int i = 0; i < 8192; i++) a[i] = b[i]; }"
        ))["f"]
        loop = function.innermost_loops()[0]
        analysis = analyze_loop(function, loop)
        cost = estimate_loop_cost(analysis, machine, vf, interleave, trip)
        assert cost.total_cycles > 0
        covered = cost.vector_iterations * vf * interleave + cost.epilogue_iterations
        assert covered == trip

    @_SETTINGS
    @given(trip=st.integers(1, 4096))
    def test_working_set_monotone_in_trip_count(self, trip):
        function = lower_unit(parse_source(
            "float a[100000];\nvoid f(int n) { for (int i = 0; i < n; i++) a[i] = 1; }"
        ))["f"]
        analysis = analyze_loop(function, function.innermost_loops()[0])
        smaller = estimate_working_set(analysis, trip)
        larger = estimate_working_set(analysis, trip + 100)
        assert larger >= smaller


class TestLegalityProperties:
    @_SETTINGS
    @given(distance=st.integers(1, 64))
    def test_max_safe_vf_never_exceeds_dependence_distance(self, distance):
        source = (
            f"float a[512];\nvoid f() {{ for (int i = {distance}; i < 512; i++)"
            f" a[i] = a[i-{distance}] + 1; }}"
        )
        function = lower_unit(parse_source(source))["f"]
        loop = function.innermost_loops()[0]
        graph = analyze_dependences(loop, function.arrays)
        assert max_safe_vf(graph) <= max(1, distance)

    @_SETTINGS
    @given(distance=st.integers(1, 64))
    def test_legality_consistent_with_dependence(self, distance):
        source = (
            f"float a[512];\nvoid f() {{ for (int i = {distance}; i < 512; i++)"
            f" a[i] = a[i-{distance}] + 1; }}"
        )
        function = lower_unit(parse_source(source))["f"]
        loop = function.innermost_loops()[0]
        legality = check_legality(analyze_loop(function, loop))
        assert legality.max_vf <= max(1, distance)


class TestAutodiffProperties:
    @_SETTINGS
    @given(
        values=st.lists(st.floats(-3, 3, allow_nan=False, width=32), min_size=2, max_size=6)
    )
    def test_softmax_output_is_distribution(self, values):
        tensor = Tensor(np.array(values, dtype=np.float64).reshape(1, -1))
        probabilities = ops.softmax(tensor, axis=-1).numpy()
        assert probabilities.min() >= 0
        assert probabilities.sum() == pytest.approx(1.0, rel=1e-9)

    @_SETTINGS
    @given(
        values=st.lists(st.floats(-2, 2, allow_nan=False, width=32), min_size=2, max_size=5)
    )
    def test_sum_gradient_is_ones(self, values):
        tensor = Tensor(np.array(values, dtype=np.float64), requires_grad=True)
        ops.sum(tensor).backward()
        assert np.allclose(tensor.grad, np.ones(len(values)))


# ---------------------------------------------------------------------------
# RewardKey v2 / persistent-store schema v2 round trips
# ---------------------------------------------------------------------------

_task_names = st.sampled_from(
    ["vectorization", "polly-tiling", "unrolling", "custom-task", "function"]
)
_actions = st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=4).map(tuple)
_hashes = st.text(alphabet="0123456789abcdef", min_size=8, max_size=12)
_measurements = st.tuples(
    st.floats(0.0, 1e12, allow_nan=False, allow_infinity=False),
    st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
)


@st.composite
def _store_records(draw):
    from repro.cache.reward_cache import CachedMeasurement, RewardKey

    key = RewardKey(
        kernel_hash=draw(_hashes),
        machine_hash=draw(_hashes),
        loop_index=draw(st.integers(-3, 64)),
        action=draw(_actions),
        task=draw(_task_names),
        default_symbol_value=draw(st.sampled_from([128, 256, 1024])),
    )
    cycles, compile_seconds = draw(_measurements)
    return key, CachedMeasurement(cycles=cycles, compile_seconds=compile_seconds)


class TestRewardStoreRoundTripProperties:
    """Randomized task-tagged records survive store → load → compact cycles."""

    @_SETTINGS
    @given(records=st.lists(_store_records(), max_size=12))
    def test_append_load_round_trip_is_exact(self, records):
        import tempfile

        from repro.distributed import PersistentRewardStore

        with tempfile.TemporaryDirectory() as directory:
            with PersistentRewardStore(directory) as store:
                for key, measurement in records:
                    store.append(key, measurement)
            loaded = PersistentRewardStore(directory).load()
        # Later appends for the same key win, matching cache.put semantics.
        expected = dict(records)
        assert loaded == expected

    @_SETTINGS
    @given(records=st.lists(_store_records(), min_size=1, max_size=12))
    def test_compaction_preserves_every_record(self, records):
        import tempfile

        from repro.distributed import PersistentRewardStore

        # Distinct keys per segment: cross-segment conflicts merge in
        # filename order by (documented) design, so a key must live in one
        # writer's segment for the expected mapping to be well-defined.
        unique = list(dict(records).items())
        with tempfile.TemporaryDirectory() as directory:
            # Two writer segments, as two concurrent runs would leave behind.
            half = len(unique) // 2
            for chunk in (unique[:half], unique[half:]):
                with PersistentRewardStore(directory) as store:
                    for key, measurement in chunk:
                        store.append(key, measurement)
            compactor = PersistentRewardStore(directory)
            compactor.compact()
            assert len(compactor.segment_paths()) == 1
            assert PersistentRewardStore(directory).load() == dict(unique)

    @_SETTINGS
    @given(records=st.lists(_store_records(), max_size=10))
    def test_disk_backed_cache_round_trip(self, records):
        import tempfile

        from repro.distributed import DiskBackedRewardCache

        with tempfile.TemporaryDirectory() as directory:
            with DiskBackedRewardCache.open(directory) as cache:
                for key, measurement in records:
                    cache.put(key, measurement)
            with DiskBackedRewardCache.open(directory) as reloaded:
                assert reloaded.preloaded == len(dict(records))
                for key, measurement in dict(records).items():
                    assert reloaded.peek(key) == measurement

    @_SETTINGS
    @given(
        vf=power_of_two,
        interleave=interleave_values,
        loop_index=st.integers(0, 32),
        measurement=_measurements,
    )
    def test_legacy_vf_interleave_keys_round_trip(
        self, vf, interleave, loop_index, measurement
    ):
        # The legacy two-int constructor tags keys with the vectorization
        # task; a store round trip must come back equal to — and keep the
        # vf/interleave aliases of — the original.
        import tempfile

        from repro.cache.reward_cache import CachedMeasurement, RewardKey
        from repro.distributed import PersistentRewardStore

        key = RewardKey("k" * 8, "m" * 8, loop_index, vf, interleave)
        cycles, compile_seconds = measurement
        stored = CachedMeasurement(cycles=cycles, compile_seconds=compile_seconds)
        with tempfile.TemporaryDirectory() as directory:
            with PersistentRewardStore(directory) as store:
                store.append(key, stored)
            loaded = PersistentRewardStore(directory).load()
        assert loaded == {key: stored}
        (round_tripped,) = loaded
        assert round_tripped.task == "vectorization"
        assert round_tripped.vf == vf
        assert round_tripped.interleave == interleave
