"""Machine-model and cycle-simulator tests."""

import pytest

from repro.analysis.loopinfo import analyze_loop
from repro.frontend import parse_source
from repro.ir.lowering import lower_unit
from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.description import MachineDescription, OpClass, avx2_machine, avx512_machine, scalar_machine
from repro.simulator.compile_time import compile_time_ratio, estimate_compile_time
from repro.simulator.cost import estimate_iteration_cycles, estimate_loop_cost, estimate_working_set
from repro.simulator.engine import Simulator, simulate_function
from repro.vectorizer.planner import build_plan


def _ir(source, name=None):
    functions = lower_unit(parse_source(source))
    return next(iter(functions.values())) if name is None else functions[name]


def _analysis(source):
    function = _ir(source)
    loop = function.innermost_loops()[0]
    return function, loop, analyze_loop(function, loop)


SAXPY = "float x[4096], y[4096];\nvoid f(float a) { for (int i = 0; i < 4096; i++) y[i] = a * x[i] + y[i]; }"
FDOT = "float a[4096], b[4096];\nfloat f() { float s = 0; for (int i = 0; i < 4096; i++) s += a[i] * b[i]; return s; }"


class TestMachineDescription:
    def test_lanes_and_parts(self):
        machine = MachineDescription(vector_bits=256)
        assert machine.lanes_for(32) == 8
        assert machine.lanes_for(64) == 4
        assert machine.physical_parts(8, 32) == 1
        assert machine.physical_parts(16, 32) == 2
        assert machine.physical_parts(64, 64) == 16

    def test_vf_and_if_candidates(self):
        machine = MachineDescription()
        assert machine.vf_candidates() == (1, 2, 4, 8, 16, 32, 64)
        assert machine.if_candidates() == (1, 2, 4, 8, 16)
        assert len(machine.vf_candidates()) * len(machine.if_candidates()) == 35

    def test_presets(self):
        assert avx512_machine().vector_bits == 512
        assert scalar_machine().max_vectorize_width == 1
        assert avx2_machine().vector_bits == 256

    def test_cycles_to_seconds(self):
        machine = MachineDescription(frequency_ghz=2.0)
        assert machine.cycles_to_seconds(2e9) == pytest.approx(1.0)

    def test_op_costs_complete(self):
        machine = MachineDescription()
        for op_class in OpClass:
            cost = machine.cost(op_class)
            assert cost.latency > 0
            assert cost.recip_throughput > 0


class TestCacheHierarchy:
    def test_level_selection(self):
        cache = CacheHierarchy.skylake_like()
        assert cache.level_for_working_set(16 * 1024).name == "L1D"
        assert cache.level_for_working_set(128 * 1024).name == "L2"
        assert cache.level_for_working_set(64 * 1024 * 1024) is None

    def test_bandwidth_monotonically_decreases(self):
        cache = CacheHierarchy.skylake_like()
        small = cache.effective_bandwidth(8 * 1024)
        large = cache.effective_bandwidth(64 * 1024 * 1024)
        assert small > large

    def test_latency_increases_with_working_set(self):
        cache = CacheHierarchy.skylake_like()
        assert cache.effective_load_latency(8 * 1024) < cache.effective_load_latency(
            100 * 1024 * 1024
        )

    def test_blended_latency_between_l1_and_miss(self):
        cache = CacheHierarchy.skylake_like()
        blended = cache.blended_load_latency(1024 * 1024)
        assert cache.levels[0].latency_cycles < blended < cache.memory_latency_cycles


class TestIterationCost:
    def test_vectorization_reduces_per_element_cost(self):
        machine = MachineDescription()
        _, _, analysis = _analysis(SAXPY)
        working_set = estimate_working_set(analysis, 4096)
        scalar = estimate_iteration_cycles(analysis, machine, 1, 1, working_set)
        vector = estimate_iteration_cycles(analysis, machine, 8, 1, working_set)
        assert vector.cycles / 8 < scalar.cycles

    def test_interleave_amortises_reduction_latency(self):
        machine = MachineDescription()
        _, _, analysis = _analysis(FDOT)
        working_set = estimate_working_set(analysis, 4096)
        one = estimate_iteration_cycles(analysis, machine, 8, 1, working_set)
        four = estimate_iteration_cycles(analysis, machine, 8, 4, working_set)
        # Per-element cost must drop when interleaving hides the FP add latency.
        assert four.cycles / (8 * 4) < one.cycles / 8

    def test_latency_bound_for_scalar_fp_reduction(self):
        machine = MachineDescription()
        _, _, analysis = _analysis(FDOT)
        working_set = estimate_working_set(analysis, 4096)
        scalar = estimate_iteration_cycles(analysis, machine, 1, 1, working_set)
        assert scalar.bound_by == "latency"
        assert scalar.cycles >= machine.cost(OpClass.FLOAT_ADD).latency

    def test_gather_more_expensive_than_contiguous(self):
        machine = MachineDescription()
        _, _, contiguous = _analysis(SAXPY)
        _, _, gathered = _analysis(
            "int idx[4096];\nfloat a[4096], b[8192];\n"
            "void f() { for (int i = 0; i < 4096; i++) a[i] = b[idx[i]]; }"
        )
        ws = estimate_working_set(contiguous, 4096)
        contiguous_cost = estimate_iteration_cycles(contiguous, machine, 8, 1, ws)
        gather_cost = estimate_iteration_cycles(gathered, machine, 8, 1, ws)
        assert gather_cost.cycles > contiguous_cost.cycles

    def test_working_set_capped_by_array_size(self):
        _, _, analysis = _analysis("float a[256];\nvoid f() { for (int i = 0; i < 256; i++) a[i] = 1; }")
        assert estimate_working_set(analysis, 256) <= 256 * 4 + 1


class TestLoopCost:
    def test_epilogue_when_factors_exceed_trip(self):
        machine = MachineDescription()
        _, loop, analysis = _analysis(
            "int a[16], b[16];\nvoid f() { for (int i = 0; i < 16; i++) a[i] = b[i]; }"
        )
        cost = estimate_loop_cost(analysis, machine, 32, 2, trip_count=16)
        assert cost.vector_iterations == 0
        assert cost.epilogue_iterations == 16

    def test_scalar_cost_is_trip_times_iteration(self):
        machine = MachineDescription()
        _, loop, analysis = _analysis(SAXPY)
        cost = estimate_loop_cost(analysis, machine, 1, 1, trip_count=100)
        assert cost.total_cycles == pytest.approx(100 * cost.scalar_iteration.cycles)

    def test_reduction_combine_charged_once(self):
        machine = MachineDescription()
        _, loop, analysis = _analysis(FDOT)
        cost = estimate_loop_cost(analysis, machine, 8, 2, trip_count=4096)
        assert cost.reduction_combine_cycles > 0

    def test_vectorized_faster_than_scalar_for_streaming(self):
        machine = MachineDescription()
        _, loop, analysis = _analysis(SAXPY)
        scalar = estimate_loop_cost(analysis, machine, 1, 1, trip_count=4096)
        vector = estimate_loop_cost(analysis, machine, 8, 2, trip_count=4096)
        assert vector.total_cycles < scalar.total_cycles

    def test_cycles_per_element(self):
        machine = MachineDescription()
        _, loop, analysis = _analysis(SAXPY)
        cost = estimate_loop_cost(analysis, machine, 8, 2, trip_count=4096)
        assert cost.cycles_per_element == pytest.approx(cost.total_cycles / 4096)


class TestSimulatorEngine:
    def test_nested_loop_cycles_scale_with_outer_trip(self):
        ir = _ir(
            "float G[64][64];\nvoid f(float x) { for (int i = 0; i < 64; i++)"
            " for (int j = 0; j < 64; j++) G[i][j] = x; }"
        )
        cost = simulate_function(ir)
        small = _ir(
            "float G[8][64];\nvoid f(float x) { for (int i = 0; i < 8; i++)"
            " for (int j = 0; j < 64; j++) G[i][j] = x; }"
        )
        small_cost = simulate_function(small)
        assert cost.total_cycles > 4 * small_cost.total_cycles

    def test_bindings_control_symbolic_trip(self):
        ir = _ir("void f(float *a, int n) { for (int i = 0; i < n; i++) a[i] = 1; }")
        short = simulate_function(ir, bindings={"n": 100})
        long = simulate_function(ir, bindings={"n": 10000})
        assert long.total_cycles > 50 * short.total_cycles

    def test_default_symbol_value_used_when_unbound(self):
        ir = _ir("void f(float *a, int n) { for (int i = 0; i < n; i++) a[i] = 1; }")
        cost = Simulator(default_symbol_value=64).simulate(ir)
        loop_cost = list(cost.loop_costs.values())[0]
        assert loop_cost.trip_count == 64

    def test_plan_changes_measured_cycles(self, machine):
        ir = _ir(SAXPY)
        loops = ir.innermost_loops()
        scalar_plan = build_plan(ir, {loops[0].loop_id: (1, 1)}, machine)
        vector_plan = build_plan(ir, {loops[0].loop_id: (8, 2)}, machine)
        scalar = simulate_function(ir, scalar_plan, machine)
        vector = simulate_function(ir, vector_plan, machine)
        assert vector.total_cycles < scalar.total_cycles
        assert vector.speedup_over(scalar) > 1.0

    def test_conditional_counts_max_branch(self):
        ir = _ir(
            "float a[8];\nvoid f(int flag) { if (flag) { a[0] = 1; } else { a[1] = 2; } }"
        )
        cost = simulate_function(ir)
        assert cost.total_cycles > 0

    def test_seconds_property(self, machine):
        ir = _ir(SAXPY)
        cost = simulate_function(ir, machine=machine)
        assert cost.seconds == pytest.approx(
            cost.total_cycles / (machine.frequency_ghz * 1e9)
        )


class TestCompileTime:
    def test_wider_factors_compile_slower(self, machine):
        ir = _ir(SAXPY)
        loops = ir.innermost_loops()
        narrow = build_plan(ir, {loops[0].loop_id: (4, 1)}, machine)
        wide = build_plan(ir, {loops[0].loop_id: (64, 16)}, machine)
        assert estimate_compile_time(ir, wide, machine) > estimate_compile_time(
            ir, narrow, machine
        )

    def test_compile_time_ratio_exceeds_limit_for_extreme_factors(self, machine):
        ir = _ir(
            "double a[4096], b[4096], c[4096], d[4096];\nvoid f() {"
            " for (int i = 0; i < 4096; i++) d[i] = a[i] * b[i] + c[i] * d[i] + a[i]; }"
        )
        loops = ir.innermost_loops()
        baseline_plan = build_plan(ir, {loops[0].loop_id: (4, 2)}, machine)
        extreme_plan = build_plan(ir, {loops[0].loop_id: (64, 16)}, machine)
        ratio = compile_time_ratio(ir, extreme_plan, baseline_plan, machine)
        assert ratio > 3.0

    def test_compile_time_positive_without_plan(self, machine):
        ir = _ir(SAXPY)
        assert estimate_compile_time(ir, None, machine) > 0
