"""Tests for IR dtypes, expression helpers, evaluation, printer and verifier."""

import pytest

from repro.frontend import parse_source
from repro.frontend.ctypes import DOUBLE, FLOAT, INT, SHORT, UCHAR, ArrayType, PointerType
from repro.ir.dtypes import DType, FLOAT32, FLOAT64, INT8, INT16, INT32, dtype_from_ctype, promote
from repro.ir.evaluate import evaluate_expr, trip_count_of
from repro.ir.expr import BinOp, CallOp, Compare, Const, Convert, LoadOp, ScalarRef, Select
from repro.ir.lowering import lower_unit
from repro.ir.nodes import ArrayInfo, IRFunction, Loop, Statement
from repro.ir.printer import print_function
from repro.ir.verifier import VerificationError, verify_function


class TestDTypes:
    def test_dtype_from_ctype(self):
        assert dtype_from_ctype(INT) == INT32
        assert dtype_from_ctype(SHORT) == INT16
        assert dtype_from_ctype(FLOAT) == FLOAT32
        assert dtype_from_ctype(DOUBLE) == FLOAT64
        assert dtype_from_ctype(UCHAR) == DType("uint", 8)

    def test_dtype_from_array_and_pointer(self):
        assert dtype_from_ctype(ArrayType(element=FLOAT, dims=(4,))) == FLOAT32
        assert dtype_from_ctype(PointerType(SHORT)) == INT16

    def test_promote(self):
        assert promote(INT32, FLOAT32) == FLOAT32
        assert promote(INT16, INT32) == INT32
        assert promote(FLOAT32, FLOAT64) == FLOAT64
        assert promote(INT8, INT8) == INT32  # C integer promotion

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            DType("complex", 32)
        with pytest.raises(ValueError):
            DType("int", 12)

    def test_size_bytes(self):
        assert INT32.size_bytes == 4
        assert FLOAT64.size_bytes == 8


class TestExprHelpers:
    def test_loads_collects_memory_reads(self):
        expr = BinOp(
            op="+",
            lhs=LoadOp(array="a", subscripts=(ScalarRef(name="i"),)),
            rhs=LoadOp(array="b", subscripts=(ScalarRef(name="i"),)),
        )
        assert {load.array for load in expr.loads()} == {"a", "b"}

    def test_scalar_refs(self):
        expr = BinOp(op="*", lhs=ScalarRef(name="x"), rhs=ScalarRef(name="y"))
        assert {ref.name for ref in expr.scalar_refs()} == {"x", "y"}

    def test_op_count(self):
        expr = BinOp(op="+", lhs=BinOp(op="*", lhs=Const(value=1), rhs=Const(value=2)),
                     rhs=Const(value=3))
        assert expr.op_count() == 2

    def test_convert_widening(self):
        widening = Convert(dtype=INT32, operand=Const(value=1), from_dtype=INT16)
        narrowing = Convert(dtype=INT16, operand=Const(value=1), from_dtype=INT32)
        assert widening.is_widening
        assert not narrowing.is_widening


class TestEvaluate:
    def test_constant(self):
        assert evaluate_expr(Const(value=7)) == 7

    def test_scalar_binding(self):
        assert evaluate_expr(ScalarRef(name="n"), {"n": 12}) == 12
        assert evaluate_expr(ScalarRef(name="n")) is None

    def test_arithmetic(self):
        expr = BinOp(op="*", lhs=ScalarRef(name="n"), rhs=Const(value=2))
        assert evaluate_expr(expr, {"n": 21}) == 42

    def test_division_by_zero_is_none(self):
        expr = BinOp(op="/", lhs=Const(value=4), rhs=Const(value=0))
        assert evaluate_expr(expr) is None

    def test_comparison_and_select(self):
        expr = Select(
            condition=Compare(op="<", lhs=Const(value=1), rhs=Const(value=2)),
            true_value=Const(value=10),
            false_value=Const(value=20),
        )
        assert evaluate_expr(expr) == 10

    def test_load_is_unknown(self):
        assert evaluate_expr(LoadOp(array="a", subscripts=(Const(value=0),))) is None

    def test_call_evaluation(self):
        expr = CallOp(callee="sqrt", args=(Const(value=16.0),))
        assert evaluate_expr(expr) == pytest.approx(4.0)

    @pytest.mark.parametrize(
        "lower, upper, step, op, expected",
        [
            (0, 512, 1, "<", 512),
            (0, 512, 2, "<", 256),
            (0, 10, 3, "<", 4),
            (0, 64, 1, "<=", 65),
            (1, 1, 1, "<", 0),
            (63, -1, -1, ">", 64),
        ],
    )
    def test_trip_count(self, lower, upper, step, op, expected):
        assert (
            trip_count_of(Const(value=lower), Const(value=upper), step, op) == expected
        )

    def test_trip_count_unknown_symbol(self):
        assert trip_count_of(Const(value=0), ScalarRef(name="n"), 1) is None

    def test_trip_count_zero_step(self):
        assert trip_count_of(Const(value=0), Const(value=8), 0) is None


class TestPrinterAndVerifier:
    def _dot_ir(self):
        unit = parse_source(
            "int vec[8];\nint f() { int s = 0; for (int i = 0; i < 8; i++) s += vec[i]; return s; }"
        )
        return lower_unit(unit)["f"]

    def test_print_function_mentions_arrays_and_loops(self):
        text = print_function(self._dot_ir())
        assert "array vec" in text
        assert "for (i = 0" in text

    def test_verify_accepts_valid_function(self):
        assert verify_function(self._dot_ir()) == []

    def test_verify_rejects_unknown_array(self):
        function = IRFunction(name="bad")
        function.body = [
            Statement(
                kind="store",
                target_array="ghost",
                target_subscripts=(Const(value=0),),
                value=Const(value=1),
            )
        ]
        with pytest.raises(VerificationError):
            verify_function(function)

    def test_verify_rejects_rank_mismatch(self):
        function = IRFunction(name="bad")
        function.arrays["a"] = ArrayInfo(name="a", dtype=INT32, dims=(4, 4))
        function.body = [
            Statement(
                kind="store",
                target_array="a",
                target_subscripts=(Const(value=0),),
                value=Const(value=1),
            )
        ]
        problems = verify_function(function, raise_on_error=False)
        assert any("rank" in problem for problem in problems)

    def test_verify_rejects_zero_step_loop(self):
        function = IRFunction(name="bad")
        function.scalars["i"] = INT32
        function.body = [
            Loop(var="i", lower=Const(value=0), upper=Const(value=4), step=0)
        ]
        problems = verify_function(function, raise_on_error=False)
        assert any("step 0" in problem for problem in problems)

    def test_statement_requires_target(self):
        with pytest.raises(ValueError):
            Statement(kind="store", value=Const(value=1))
        with pytest.raises(ValueError):
            Statement(kind="scalar", value=Const(value=1))

    def test_statement_reads_and_writes(self):
        statement = Statement(
            kind="store",
            target_array="a",
            target_subscripts=(ScalarRef(name="i"),),
            value=LoadOp(array="b", subscripts=(ScalarRef(name="i"),)),
        )
        assert [a.array for a in statement.reads()] == ["b"]
        assert [a.array for a in statement.writes()] == ["a"]
