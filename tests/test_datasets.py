"""Dataset tests: kernel banks, synthetic generator, suites compile cleanly."""

import pytest

from repro.datasets import (
    KernelSuite,
    LoopKernel,
    SyntheticDatasetConfig,
    dot_product_kernel,
    generate_synthetic_dataset,
    llvm_vectorizer_suite,
    mibench_suite,
    polybench_suite,
)
from repro.datasets import test_benchmarks as held_out_benchmarks
from repro.datasets.synthetic import TEMPLATES, parameter_space_size
from repro.ir.verifier import verify_function


class TestKernelContainer:
    def test_lazy_parse_and_lower(self, dot_kernel):
        unit = dot_kernel.parse()
        assert unit.find_function("example1") is not None
        ir = dot_kernel.lower()
        assert len(ir.innermost_loops()) == 1

    def test_with_source_creates_independent_copy(self, dot_kernel):
        modified = dot_kernel.with_source(dot_kernel.source + "\n// touched\n")
        assert modified.source != dot_kernel.source
        assert modified.name == dot_kernel.name

    def test_unknown_function_raises(self):
        kernel = LoopKernel(name="bad", source="void f() {}", function_name="missing")
        with pytest.raises(ValueError):
            kernel.function_ast()

    def test_suite_lookup(self):
        suite = llvm_vectorizer_suite()
        assert suite.by_name("saxpy") is not None
        assert suite.by_name("not_there") is None
        assert len(suite.names()) == len(suite)


class TestKernelBanks:
    @pytest.mark.parametrize(
        "suite_factory, minimum",
        [(llvm_vectorizer_suite, 20), (polybench_suite, 6), (mibench_suite, 8)],
    )
    def test_suites_have_expected_size(self, suite_factory, minimum):
        assert len(suite_factory()) >= minimum

    @pytest.mark.parametrize(
        "suite_factory", [llvm_vectorizer_suite, polybench_suite, mibench_suite]
    )
    def test_every_kernel_lowers_and_verifies(self, suite_factory):
        for kernel in suite_factory():
            ir = kernel.lower()
            assert verify_function(ir, raise_on_error=False) == []
            assert len(ir.innermost_loops()) >= 1

    def test_test_benchmarks_are_twelve(self):
        suite = held_out_benchmarks()
        assert len(suite) == 12
        assert len(set(suite.names())) == 12

    def test_test_benchmarks_subset_of_full_suite(self):
        full_names = set(llvm_vectorizer_suite().names())
        assert set(held_out_benchmarks().names()) <= full_names

    def test_dot_product_kernel_matches_paper(self, dot_kernel):
        assert "vec[512]" in dot_kernel.source
        assert "aligned(16)" in dot_kernel.source
        ir = dot_kernel.lower()
        assert ir.innermost_loops()[0].trip_count == 512

    def test_mibench_contains_non_vectorizable_programs(self):
        from repro.analysis.loopinfo import analyze_loop

        suite = mibench_suite()
        non_vectorizable = 0
        for kernel in suite:
            ir = kernel.lower()
            for loop in ir.innermost_loops():
                if not analyze_loop(ir, loop).is_vectorizable:
                    non_vectorizable += 1
                    break
        assert non_vectorizable >= 2  # e.g. crc32, adpcm

    def test_polybench_kernels_have_nested_loops(self):
        for kernel in polybench_suite():
            ir = kernel.lower()
            assert any(loop.depth_below >= 2 for loop in ir.top_level_loops())


class TestSyntheticGenerator:
    def test_requested_count_generated(self):
        suite = generate_synthetic_dataset(SyntheticDatasetConfig(count=40, seed=0))
        assert len(suite) == 40

    def test_deterministic_given_seed(self):
        first = generate_synthetic_dataset(SyntheticDatasetConfig(count=15, seed=3))
        second = generate_synthetic_dataset(SyntheticDatasetConfig(count=15, seed=3))
        assert [k.source for k in first] == [k.source for k in second]

    def test_different_seeds_differ(self):
        first = generate_synthetic_dataset(SyntheticDatasetConfig(count=15, seed=1))
        second = generate_synthetic_dataset(SyntheticDatasetConfig(count=15, seed=2))
        assert [k.source for k in first] != [k.source for k in second]

    def test_sources_are_unique(self):
        suite = generate_synthetic_dataset(SyntheticDatasetConfig(count=60, seed=0))
        sources = [kernel.source for kernel in suite]
        assert len(set(sources)) == len(sources)

    def test_all_generated_kernels_compile(self):
        suite = generate_synthetic_dataset(SyntheticDatasetConfig(count=60, seed=5))
        for kernel in suite:
            ir = kernel.lower()
            assert verify_function(ir, raise_on_error=False) == []

    def test_parameter_space_exceeds_paper_dataset_size(self):
        # The paper generates "more than 10,000 synthetic loop examples".
        assert parameter_space_size() > 10_000

    def test_template_restriction(self):
        suite = generate_synthetic_dataset(
            SyntheticDatasetConfig(count=10, seed=0, templates=["reduction"])
        )
        assert all("acc" in kernel.source for kernel in suite)

    def test_trip_count_bounds_respected(self):
        config = SyntheticDatasetConfig(count=20, seed=0, min_trip_count=512,
                                        max_trip_count=1024)
        suite = generate_synthetic_dataset(config)
        for kernel in suite:
            ir = kernel.lower()
            for loop in ir.innermost_loops():
                if loop.trip_count is not None and loop.trip_count > 4:
                    assert loop.trip_count <= 1100

    def test_all_templates_produce_valid_code(self):
        for template in TEMPLATES:
            suite = generate_synthetic_dataset(
                SyntheticDatasetConfig(count=3, seed=0, templates=[template])
            )
            assert len(suite) >= 1
            for kernel in suite:
                kernel.lower()
