"""Unit tests for the shared reward cache and evaluation batcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    CachedMeasurement,
    EvaluationBatcher,
    RewardCache,
    kernel_fingerprint,
    machine_fingerprint,
)
from repro.core.framework import build_embedding_model
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.datasets.motivating import dot_product_kernel
from repro.evaluation.report import format_cache_stats_table
from repro.machine.description import MachineDescription
from repro.rl.env import VectorizationEnv, build_samples


SAXPY = LoopKernel(
    name="saxpy",
    source=(
        "float x[2048], y[2048];\n"
        "void saxpy(float alpha) { for (int i = 0; i < 2048; i++)"
        " y[i] = alpha * x[i] + y[i]; }"
    ),
    function_name="saxpy",
)


class TestFingerprints:
    def test_kernel_fingerprint_tracks_content_not_name(self):
        clone = SAXPY.with_source(SAXPY.source)
        clone.name = "renamed"
        assert kernel_fingerprint(clone) == kernel_fingerprint(SAXPY)

    def test_kernel_fingerprint_changes_with_source(self):
        edited = SAXPY.with_source(SAXPY.source.replace("2048", "1024"))
        assert kernel_fingerprint(edited) != kernel_fingerprint(SAXPY)

    def test_kernel_fingerprint_changes_with_bindings(self):
        bound = SAXPY.with_source(SAXPY.source)
        bound.bindings = {"n": 64}
        assert kernel_fingerprint(bound) != kernel_fingerprint(SAXPY)

    def test_machine_fingerprint_tracks_cost_knobs(self):
        assert machine_fingerprint(MachineDescription()) == machine_fingerprint(
            MachineDescription()
        )
        wider = MachineDescription(vector_bits=512)
        assert machine_fingerprint(wider) != machine_fingerprint(MachineDescription())


class TestRewardCache:
    def test_measure_records_hit_and_miss(self, pipeline):
        cache = RewardCache()
        first, was_hit_first = cache.measure(pipeline, SAXPY, 0, 8, 2)
        second, was_hit_second = cache.measure(pipeline, SAXPY, 0, 8, 2)
        assert not was_hit_first and was_hit_second
        assert second.cycles == first.cycles
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_different_actions_are_distinct_entries(self, pipeline):
        cache = RewardCache()
        cache.measure(pipeline, SAXPY, 0, 1, 1)
        _, was_hit = cache.measure(pipeline, SAXPY, 0, 8, 2)
        assert not was_hit
        assert len(cache) == 2

    def test_machine_changes_miss(self):
        cache = RewardCache()
        avx2 = CompileAndMeasure(machine=MachineDescription())
        avx512 = CompileAndMeasure(machine=MachineDescription(vector_bits=512))
        cache.measure(avx2, SAXPY, 0, 8, 2)
        _, was_hit = cache.measure(avx512, SAXPY, 0, 8, 2)
        assert not was_hit

    def test_default_symbol_value_is_part_of_the_key(self):
        # The simulator pads unbound symbolic bounds with this value, so two
        # pipelines configured differently must not share measurements.
        symbolic = LoopKernel(
            name="symbolic",
            source=(
                "void f(float *a, int n) { for (int i = 0; i < n; i++)"
                " a[i] = a[i] * 2.0f; }"
            ),
            function_name="f",
        )
        cache = RewardCache()
        small = CompileAndMeasure(default_symbol_value=16)
        large = CompileAndMeasure(default_symbol_value=4096)
        first, _ = cache.measure(small, symbolic, 0, 4, 2)
        second, was_hit = cache.measure(large, symbolic, 0, 4, 2)
        assert not was_hit
        assert second.cycles != first.cycles

    def test_max_entries_evicts_fifo(self):
        cache = RewardCache(max_entries=2)
        machine = MachineDescription()
        keys = [cache.key_for(SAXPY, machine, 0, vf, 1) for vf in (1, 2, 4)]
        for key in keys:
            cache.put(key, CachedMeasurement(cycles=1.0, compile_seconds=0.1))
        assert len(cache) == 2
        assert cache.peek(keys[0]) is None
        assert cache.peek(keys[2]) is not None
        assert cache.stats.evictions == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RewardCache(max_entries=0)

    def test_discarded_kernels_never_alias_fingerprints(self):
        # id() of a freed kernel is recycled immediately by CPython; the memo
        # must pin objects / identity-check so a new kernel at the same
        # address cannot inherit the old kernel's hash.
        cache = RewardCache()
        machine = MachineDescription()
        keys = set()
        for n in (128, 256, 512, 1024, 2048):
            kernel = SAXPY.with_source(SAXPY.source.replace("2048", str(n)))
            keys.add(cache.key_for(kernel, machine, 0, 4, 2).kernel_hash)
            del kernel
        assert len(keys) == 5

    def test_source_reassignment_rehashes(self):
        cache = RewardCache()
        machine = MachineDescription()
        kernel = SAXPY.with_source(SAXPY.source)
        before = cache.key_for(kernel, machine, 0, 4, 2).kernel_hash
        kernel.source = kernel.source.replace("2048", "64")
        after = cache.key_for(kernel, machine, 0, 4, 2).kernel_hash
        assert before != after

    def test_clear_empties_entries(self, pipeline):
        cache = RewardCache()
        cache.measure(pipeline, SAXPY, 0, 8, 2)
        cache.clear()
        assert len(cache) == 0


class TestEvaluationBatcher:
    def test_flush_preserves_request_order(self, pipeline):
        cache = RewardCache()
        batcher = EvaluationBatcher(pipeline, cache)
        grid = [(1, 1), (4, 2), (8, 4)]
        tickets = [batcher.add(SAXPY, 0, vf, il) for vf, il in grid]
        outcomes = batcher.flush()
        assert tickets == [0, 1, 2]
        direct = [
            pipeline.measure_with_factors(SAXPY, {0: factors}).cycles
            for factors in grid
        ]
        assert [o.measurement.cycles for o in outcomes] == direct

    def test_duplicates_cost_one_evaluation(self, pipeline):
        cache = RewardCache()
        batcher = EvaluationBatcher(pipeline, cache)
        for _ in range(5):
            batcher.add(SAXPY, 0, 8, 2)
        outcomes = batcher.flush()
        assert cache.stats.misses == 1
        assert cache.stats.batch_deduplicated == 4
        assert not outcomes[0].was_cached
        assert all(o.was_cached for o in outcomes[1:])

    def test_bounded_cache_smaller_than_batch_still_answers(self, pipeline):
        # Eviction during a flush must not lose this pass's measurements.
        cache = RewardCache(max_entries=2)
        batcher = EvaluationBatcher(pipeline, cache)
        grid = [(1, 1), (2, 1), (4, 1), (8, 1)]
        for vf, interleave in grid:
            batcher.add(SAXPY, 0, vf, interleave)
        outcomes = batcher.flush()
        assert len(outcomes) == 4
        assert all(o.measurement.cycles > 0 for o in outcomes)
        assert len(cache) == 2
        assert cache.stats.evictions == 2

    def test_flush_drains_pending(self, pipeline):
        batcher = EvaluationBatcher(pipeline, RewardCache())
        batcher.add(SAXPY, 0, 2, 1)
        batcher.flush()
        assert len(batcher) == 0
        assert batcher.flush() == []


class TestEnvBatchEvaluation:
    @pytest.fixture(scope="class")
    def env(self):
        kernels = [dot_product_kernel(), SAXPY]
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels)
        samples = build_samples(kernels, embedding, pipeline)
        return VectorizationEnv(samples, pipeline=pipeline, shuffle=False, seed=0)

    def test_evaluate_batch_matches_step(self, env):
        sample = env.samples[0]
        direct_reward, _ = env.evaluate_factors(sample, 8, 2)
        action = env.action_space.encode(8, 2)
        results = env.evaluate_batch([(sample, action)] * 3)
        assert [r.reward for r in results] == [direct_reward] * 3
        assert all(r.info["cached"] == 1.0 for r in results)

    def test_evaluate_batch_counts_steps(self, env):
        before = env.total_steps
        sample = env.samples[0]
        env.evaluate_batch([(sample, env.action_space.encode(4, 1))] * 4)
        assert env.total_steps == before + 4

    def test_factors_batch_mixes_samples(self, env):
        requests = [(sample, 2, 2) for sample in env.samples]
        results = env.evaluate_factors_batch(requests)
        assert len(results) == len(env.samples)
        for (sample, vf, interleave), (reward, info) in zip(requests, results):
            assert info["vf"] == float(vf)
            expected, _ = env.evaluate_factors(sample, vf, interleave)
            assert reward == expected

    def test_shared_cache_across_envs(self):
        kernels = [dot_product_kernel()]
        pipeline = CompileAndMeasure()
        embedding = build_embedding_model(kernels)
        samples = build_samples(kernels, embedding, pipeline)
        shared = RewardCache()
        lenient = VectorizationEnv(
            samples, pipeline=pipeline, reward_cache=shared, shuffle=False
        )
        strict = VectorizationEnv(
            samples,
            pipeline=pipeline,
            reward_cache=shared,
            shuffle=False,
            compile_time_limit=0.0001,
            compile_time_penalty=-9.0,
        )
        lenient.evaluate_factors(samples[0], 64, 16)
        reward, info = strict.evaluate_factors(samples[0], 64, 16)
        # The measurement is shared, but each env derives its own reward.
        assert info.get("cached") == 1.0
        assert reward == -9.0


class TestStatsReport:
    def test_table_renders_all_counters(self, pipeline):
        cache = RewardCache()
        cache.measure(pipeline, SAXPY, 0, 8, 2)
        cache.measure(pipeline, SAXPY, 0, 8, 2)
        text = format_cache_stats_table(cache.stats, title="unit").render()
        assert "unit" in text
        assert "hit rate" in text
        assert "compiles avoided" in text

    def test_as_dict_roundtrip(self):
        cache = RewardCache()
        payload = cache.stats.as_dict()
        assert set(payload) == {
            "hits",
            "misses",
            "batch_deduplicated",
            "evictions",
            "hit_rate",
            "compiles_avoided",
        }
