"""Agent tests: random, NNS, decision tree, brute force, baseline, policy."""

import numpy as np
import pytest

from repro.agents import (
    BaselineAgent,
    BruteForceAgent,
    DecisionTree,
    DecisionTreeAgent,
    NearestNeighborAgent,
    PolicyAgent,
    RandomSearchAgent,
)
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.rl.policy import DiscretePolicy
from repro.rl.spaces import DEFAULT_IF_VALUES, DEFAULT_VF_VALUES


DOT = LoopKernel(
    name="dot",
    source=(
        "int vec[512] __attribute__((aligned(16)));\n"
        "int kernel() { int s = 0; for (int i = 0; i < 512; i++) s += vec[i] * vec[i]; return s; }"
    ),
    function_name="kernel",
)


class TestRandomSearchAgent:
    def test_factors_come_from_menu(self):
        agent = RandomSearchAgent(seed=0)
        for _ in range(50):
            decision = agent.select_factors(np.zeros(4))
            assert decision.vf in DEFAULT_VF_VALUES
            assert decision.interleave in DEFAULT_IF_VALUES

    def test_deterministic_given_seed(self):
        first = [RandomSearchAgent(seed=7).select_factors(np.zeros(2)).as_tuple()
                 for _ in range(1)]
        second = [RandomSearchAgent(seed=7).select_factors(np.zeros(2)).as_tuple()
                  for _ in range(1)]
        assert first == second

    def test_covers_multiple_factors(self):
        agent = RandomSearchAgent(seed=1)
        seen = {agent.select_factors(np.zeros(2)).as_tuple() for _ in range(100)}
        assert len(seen) > 10

    def test_kernel_queries_are_order_independent(self):
        # Regression: decisions for a given (kernel, loop) must depend only
        # on the agent's seed, never on how many other queries ran first —
        # cache hits reordering or skipping evaluations cannot change them.
        other = LoopKernel(
            name="other",
            source=(
                "int buf[256];\n"
                "int acc() { int s = 0; for (int i = 0; i < 256; i++)"
                " s += buf[i]; return s; }"
            ),
            function_name="acc",
        )
        direct = RandomSearchAgent(seed=3).select_factors(
            np.zeros(2), kernel=DOT, loop_index=0
        )
        reordered_agent = RandomSearchAgent(seed=3)
        for _ in range(17):  # burn unrelated queries first
            reordered_agent.select_factors(np.zeros(2))
            reordered_agent.select_factors(np.zeros(2), kernel=other, loop_index=0)
        reordered = reordered_agent.select_factors(np.zeros(2), kernel=DOT, loop_index=0)
        assert direct.as_tuple() == reordered.as_tuple()

    def test_best_of_n_unaffected_by_warm_cache(self):
        # A pre-warmed shared cache changes which draws are evaluated vs
        # looked up, but must not change the seeded decision.
        from repro.cache.reward_cache import RewardCache

        pipeline = CompileAndMeasure()
        cold = RandomSearchAgent(
            seed=11, candidates=5, pipeline=pipeline, reward_cache=RewardCache()
        ).select_factors(np.zeros(2), kernel=DOT, loop_index=0)

        warm_cache = RewardCache()
        for vf in DEFAULT_VF_VALUES:  # pre-populate the whole VF row
            warm_cache.measure(pipeline, DOT, 0, vf, 1)
        warm = RandomSearchAgent(
            seed=11, candidates=5, pipeline=pipeline, reward_cache=warm_cache
        ).select_factors(np.zeros(2), kernel=DOT, loop_index=0)
        assert cold.as_tuple() == warm.as_tuple()

    def test_distinct_loops_get_distinct_streams(self):
        agent = RandomSearchAgent(seed=5)
        decisions = {
            agent.select_factors(np.zeros(2), kernel=DOT, loop_index=i).as_tuple()
            for i in range(24)
        }
        assert len(decisions) > 1


class TestNearestNeighborAgent:
    def test_exact_match_returns_label(self):
        embeddings = np.eye(4)
        labels = [(1, 1), (4, 2), (8, 4), (64, 16)]
        agent = NearestNeighborAgent(k=1).fit(embeddings, labels)
        decision = agent.select_factors(np.array([0, 0, 1.0, 0]))
        assert decision.as_tuple() == (8, 4)

    def test_nearest_by_distance(self):
        embeddings = np.array([[0.0, 0.0], [10.0, 10.0]])
        labels = [(2, 2), (32, 8)]
        agent = NearestNeighborAgent(k=1, normalize=False).fit(embeddings, labels)
        assert agent.select_factors(np.array([1.0, 0.5])).as_tuple() == (2, 2)
        assert agent.select_factors(np.array([9.0, 9.5])).as_tuple() == (32, 8)

    def test_majority_vote_with_k3(self):
        embeddings = np.array([[0.0], [0.1], [0.2], [5.0]])
        labels = [(8, 2), (8, 2), (4, 1), (64, 16)]
        agent = NearestNeighborAgent(k=3, normalize=False).fit(embeddings, labels)
        assert agent.select_factors(np.array([0.05])).as_tuple() == (8, 2)

    def test_unfitted_agent_raises(self):
        with pytest.raises(RuntimeError):
            NearestNeighborAgent().select_factors(np.zeros(3))

    def test_fit_validates_shapes(self):
        with pytest.raises(ValueError):
            NearestNeighborAgent().fit(np.zeros((3, 2)), [(1, 1)])
        with pytest.raises(ValueError):
            NearestNeighborAgent(k=0)


class TestDecisionTree:
    def test_fits_axis_aligned_split(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(200, 3))
        labels = (features[:, 1] > 0.2).astype(int)
        tree = DecisionTree(max_depth=3).fit(features, labels)
        accuracy = (tree.predict(features) == labels).mean()
        assert accuracy > 0.95

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(300, 2))
        labels = (features[:, 0] > 0).astype(int) + 2 * (features[:, 1] > 0).astype(int)
        tree = DecisionTree(max_depth=4).fit(features, labels)
        assert (tree.predict(features) == labels).mean() > 0.9

    def test_max_depth_respected(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(200, 4))
        labels = rng.integers(0, 5, size=200)
        tree = DecisionTree(max_depth=3).fit(features, labels)
        assert tree.depth() <= 3

    def test_pure_node_stops_splitting(self):
        features = np.array([[0.0], [1.0], [2.0]])
        labels = np.array([1, 1, 1])
        tree = DecisionTree().fit(features, labels)
        assert tree.node_count() == 1
        assert tree.predict_one(np.array([5.0])) == 1

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict_one(np.zeros(2))

    def test_agent_round_trips_factor_labels(self):
        embeddings = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 10)
        labels = [(1, 1), (8, 2), (16, 4), (64, 16)] * 10
        agent = DecisionTreeAgent(max_depth=4).fit(np.array(embeddings), labels)
        assert agent.select_factors(np.array([1.0, 1.0])).as_tuple() == (64, 16)
        assert agent.select_factors(np.array([0.0, 1.0])).as_tuple() == (8, 2)

    def test_agent_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeAgent().select_factors(np.zeros(2))


class TestSearchAndBaselineAgents:
    def test_brute_force_matches_direct_search(self, pipeline):
        agent = BruteForceAgent(pipeline)
        decision = agent.select_factors(np.zeros(4), kernel=DOT, loop_index=0)
        best = pipeline.measure_with_factors(DOT, {0: decision.as_tuple()})
        worse = pipeline.measure_with_factors(DOT, {0: (1, 1)})
        assert best.cycles <= worse.cycles

    def test_brute_force_requires_kernel(self):
        with pytest.raises(ValueError):
            BruteForceAgent().select_factors(np.zeros(4))

    def test_brute_force_caches(self, pipeline):
        agent = BruteForceAgent(pipeline)
        first = agent.select_factors(np.zeros(4), kernel=DOT, loop_index=0)
        second = agent.select_factors(np.zeros(4), kernel=DOT, loop_index=0)
        assert first.as_tuple() == second.as_tuple()

    def test_baseline_agent_matches_cost_model(self, pipeline):
        agent = BaselineAgent(pipeline)
        decision = agent.select_factors(np.zeros(4), kernel=DOT, loop_index=0)
        assert decision.as_tuple() == (4, 2)

    def test_baseline_agent_without_kernel_is_scalar(self):
        assert BaselineAgent().select_factors(np.zeros(4)).as_tuple() == (1, 1)

    def test_policy_agent_decodes_with_policy_space(self):
        policy = DiscretePolicy(observation_dim=6, seed=0)
        agent = PolicyAgent(policy)
        decision = agent.select_factors(np.zeros(6))
        assert decision.vf in DEFAULT_VF_VALUES
        assert decision.interleave in DEFAULT_IF_VALUES
