"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.pipeline import CompileAndMeasure
from repro.datasets.motivating import dot_product_kernel
from repro.frontend import parse_source
from repro.ir.lowering import lower_unit
from repro.machine.description import MachineDescription


DOT_PRODUCT_SOURCE = """
int vec[512] __attribute__((aligned(16)));
int example1() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}
"""

SAXPY_SOURCE = """
float x[4096], y[4096];
void saxpy(float alpha) {
    for (int i = 0; i < 4096; i++) {
        y[i] = alpha * x[i] + y[i];
    }
}
"""

MATMUL_SOURCE = """
float A[64][64], B[64][64], C[64][64];
void matmul(float alpha) {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
            float sum = 0;
            for (int k = 0; k < 64; k++) {
                sum += alpha * A[i][k] * B[k][j];
            }
            C[i][j] = sum;
        }
    }
}
"""

PREDICATE_SOURCE = """
void clip(int *a, int *b, int n, int limit) {
    for (int i = 0; i < n; i++) {
        int j = a[i];
        b[i] = (j > limit ? limit : 0);
    }
}
"""


@pytest.fixture(scope="session")
def machine() -> MachineDescription:
    return MachineDescription()


@pytest.fixture(scope="session")
def pipeline(machine) -> CompileAndMeasure:
    return CompileAndMeasure(machine=machine)


@pytest.fixture(scope="session")
def dot_kernel():
    return dot_product_kernel()


@pytest.fixture
def dot_ir():
    unit = parse_source(DOT_PRODUCT_SOURCE)
    return lower_unit(unit)["example1"]


@pytest.fixture
def saxpy_ir():
    unit = parse_source(SAXPY_SOURCE)
    return lower_unit(unit)["saxpy"]


@pytest.fixture
def matmul_ir():
    unit = parse_source(MATMUL_SOURCE)
    return lower_unit(unit)["matmul"]


@pytest.fixture
def predicate_ir():
    unit = parse_source(PREDICATE_SOURCE)
    return lower_unit(unit)["clip"]
