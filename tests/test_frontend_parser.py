"""Parser tests."""

import pytest

from repro.frontend import ast, parse_source
from repro.frontend.ctypes import ArrayType, FloatType, IntType, PointerType
from repro.frontend.errors import ParseError


class TestTopLevel:
    def test_global_array_with_alignment(self):
        unit = parse_source("int vec[512] __attribute__((aligned(16)));")
        decl = unit.globals[0]
        assert decl.name == "vec"
        assert isinstance(decl.ctype, ArrayType)
        assert decl.ctype.dims == (512,)
        assert decl.alignment == 16

    def test_multiple_globals_in_one_declaration(self):
        unit = parse_source("float a[4], b[4], c[4];")
        assert [g.name for g in unit.globals] == ["a", "b", "c"]

    def test_function_with_attribute(self):
        unit = parse_source("__attribute__((noinline)) int f() { return 1; }")
        function = unit.functions[0]
        assert function.name == "f"
        assert "noinline" in function.attributes

    def test_function_parameters(self):
        unit = parse_source("void f(int *a, float b, short c[]) {}")
        params = unit.functions[0].parameters
        assert [p.name for p in params] == ["a", "b", "c"]
        assert isinstance(params[0].ctype, PointerType)
        assert isinstance(params[1].ctype, FloatType)
        assert isinstance(params[2].ctype, ArrayType)

    def test_void_parameter_list(self):
        unit = parse_source("int f(void) { return 0; }")
        assert unit.functions[0].parameters == []

    def test_two_dimensional_global(self):
        unit = parse_source("double G[16][32];")
        assert unit.globals[0].ctype.dims == (16, 32)

    def test_macro_dimension_folds(self):
        unit = parse_source("#define N 8\nint a[N*2];")
        assert unit.globals[0].ctype.dims == (16,)

    def test_find_function(self):
        unit = parse_source("void a() {} void b() {}")
        assert unit.find_function("b").name == "b"
        assert unit.find_function("missing") is None

    def test_prototype_without_body(self):
        unit = parse_source("int f(int x);")
        assert unit.functions[0].body is None


class TestStatements:
    def _body(self, source):
        unit = parse_source("void f() { " + source + " }")
        return unit.functions[0].body.statements

    def test_declaration_with_init(self):
        statements = self._body("int x = 3;")
        decl = statements[0].declarations[0]
        assert decl.name == "x"
        assert isinstance(decl.init, ast.IntLiteral)

    def test_for_loop_structure(self):
        statements = self._body("for (int i = 0; i < 10; i++) { }")
        loop = statements[0]
        assert isinstance(loop, ast.ForStmt)
        assert isinstance(loop.init, ast.DeclStmt)
        assert isinstance(loop.condition, ast.BinaryOp)

    def test_while_loop(self):
        statements = self._body("while (x < 10) x++;")
        assert isinstance(statements[0], ast.WhileStmt)

    def test_do_while_loop(self):
        statements = self._body("do { x++; } while (x < 3);")
        assert isinstance(statements[0], ast.DoWhileStmt)

    def test_if_else(self):
        statements = self._body("if (x) y = 1; else y = 2;")
        branch = statements[0]
        assert isinstance(branch, ast.IfStmt)
        assert branch.else_branch is not None

    def test_break_and_continue(self):
        statements = self._body("for (;;) { if (x) break; continue; }")
        loop = statements[0]
        assert isinstance(loop, ast.ForStmt)

    def test_return_value(self):
        statements = self._body("return x + 1;")
        assert isinstance(statements[0], ast.ReturnStmt)

    def test_empty_statement(self):
        statements = self._body(";")
        assert isinstance(statements[0], ast.CompoundStmt)


class TestPragmaAttachment:
    def test_pragma_attaches_to_following_for(self):
        source = """
void f(int *a) {
    #pragma clang loop vectorize_width(8) interleave_count(2)
    for (int i = 0; i < 64; i++) {
        a[i] = i;
    }
}
"""
        unit = parse_source(source)
        loop = next(ast.iter_loops(unit.functions[0]))
        assert loop.pragma.vectorize_width == 8
        assert loop.pragma.interleave_count == 2

    def test_pragma_before_inner_loop(self):
        source = """
float G[8][8];
void f(float x) {
    for (int i = 0; i < 8; i++) {
        #pragma clang loop vectorize_width(4)
        for (int j = 0; j < 8; j++) {
            G[i][j] = x;
        }
    }
}
"""
        unit = parse_source(source)
        loops = list(ast.iter_loops(unit.functions[0]))
        assert loops[0].pragma is None
        assert loops[1].pragma.vectorize_width == 4

    def test_pragma_directly_inside_braceless_position(self):
        source = """
void f(int *a, int n) {
    for (int i = 0; i < n; i++)
        a[i] = i;
}
"""
        unit = parse_source(source)
        assert len(list(ast.iter_loops(unit.functions[0]))) == 1


class TestExpressions:
    def _expr(self, text):
        unit = parse_source(f"void f() {{ x = {text}; }}")
        stmt = unit.functions[0].body.statements[0]
        return stmt.expr.value

    def test_precedence_mul_over_add(self):
        expr = self._expr("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = self._expr("(a + b) * c")
        assert expr.op == "*"

    def test_ternary(self):
        expr = self._expr("a > b ? a : b")
        assert isinstance(expr, ast.TernaryOp)

    def test_cast_expression(self):
        expr = self._expr("(float) a")
        assert isinstance(expr, ast.Cast)
        assert isinstance(expr.target_type, FloatType)

    def test_nested_subscripts(self):
        expr = self._expr("A[i][j]")
        assert isinstance(expr, ast.ArraySubscript)
        assert expr.root_array().name == "A"
        assert len(expr.indices()) == 2

    def test_call_expression(self):
        expr = self._expr("sqrt(a * a)")
        assert isinstance(expr, ast.Call)
        assert expr.callee == "sqrt"

    def test_unary_minus(self):
        expr = self._expr("-a + b")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_compound_assignment(self):
        unit = parse_source("void f() { x += y * 2; }")
        stmt = unit.functions[0].body.statements[0]
        assert stmt.expr.op == "+="

    def test_shift_and_bitwise(self):
        expr = self._expr("(a & b) | (c >> 2)")
        assert expr.op == "|"

    def test_logical_operators(self):
        expr = self._expr("a && b || c")
        assert expr.op == "||"

    def test_sizeof_type(self):
        expr = self._expr("sizeof(int)")
        assert isinstance(expr, ast.SizeOf)

    def test_comparison_chain_left_assoc(self):
        expr = self._expr("a - b - c")
        assert expr.op == "-"
        assert expr.left.op == "-"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_source("void f() { int x = 1 }")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_source("void f() { x = (1 + 2; }")

    def test_unknown_type(self):
        with pytest.raises(ParseError):
            parse_source("void f() { mystruct x; }")


class TestAstHelpers:
    def test_iter_loops_order(self):
        source = """
void f(int *a) {
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) { a[j] = j; }
    }
    for (int k = 0; k < 4; k++) { a[k] = k; }
}
"""
        unit = parse_source(source)
        loops = list(ast.iter_loops(unit.functions[0]))
        assert len(loops) == 3

    def test_innermost_loops(self):
        source = """
void f(int *a) {
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) { a[j] = j; }
    }
}
"""
        unit = parse_source(source)
        inner = ast.innermost_loops(unit.functions[0])
        assert len(inner) == 1

    def test_loop_nest_depth(self):
        source = """
void f(int *a) {
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            for (int k = 0; k < 4; k++)
                a[k] = k;
}
"""
        unit = parse_source(source)
        root = next(ast.iter_loops(unit.functions[0]))
        assert ast.loop_nest_depth(root) == 3

    def test_count_nodes(self):
        unit = parse_source("void f() { x = 1 + 2; }")
        assert ast.count_nodes(unit, ast.IntLiteral) == 2

    def test_walk_includes_self(self):
        unit = parse_source("int x;")
        assert unit in list(unit.walk())
