"""Tests for the type system, semantic analysis and the C printer."""

import pytest

from repro.frontend import ast, parse_source
from repro.frontend.ctypes import (
    ArrayType,
    DOUBLE,
    FLOAT,
    INT,
    IntType,
    LONG,
    PointerType,
    SHORT,
    UCHAR,
    common_type,
    is_widening_conversion,
    type_from_specifiers,
)
from repro.frontend.errors import SemanticError
from repro.frontend.printer import print_expr, print_unit
from repro.frontend.sema import analyze


class TestTypeSystem:
    @pytest.mark.parametrize(
        "specifiers, expected",
        [
            (["int"], INT),
            (["unsigned", "char"], UCHAR),
            (["short", "int"], SHORT),
            (["long", "long"], LONG),
            (["float"], FLOAT),
            (["double"], DOUBLE),
            (["const", "int"], INT),
            (["unsigned"], IntType(32, False)),
        ],
    )
    def test_type_from_specifiers(self, specifiers, expected):
        assert type_from_specifiers(specifiers) == expected

    def test_unknown_specifiers(self):
        assert type_from_specifiers(["struct"]) is None

    def test_sizes(self):
        assert INT.size_bytes == 4
        assert SHORT.size_bytes == 2
        assert DOUBLE.size_bytes == 8
        assert PointerType(INT).size_bytes == 8

    def test_array_type_properties(self):
        array = ArrayType(element=FLOAT, dims=(8, 16))
        assert array.rank == 2
        assert array.element_count == 128
        assert array.size_bytes == 128 * 4

    def test_common_type_promotions(self):
        assert common_type(SHORT, INT) == INT
        assert common_type(INT, FLOAT).is_float
        assert common_type(FLOAT, DOUBLE) == DOUBLE
        assert common_type(IntType(32, False), INT) == IntType(32, False)

    def test_widening_conversion(self):
        assert is_widening_conversion(SHORT, INT)
        assert is_widening_conversion(INT, FLOAT)
        assert is_widening_conversion(FLOAT, DOUBLE)
        assert not is_widening_conversion(INT, SHORT)
        assert not is_widening_conversion(DOUBLE, FLOAT)


class TestSema:
    def test_expression_types_annotated(self):
        unit = parse_source(
            "float a[8];\nvoid f(int n) { for (int i = 0; i < n; i++) a[i] = a[i] * 2; }"
        )
        analyze(unit)
        loop = next(ast.iter_loops(unit.functions[0]))
        store = loop.body.statements[0].expr
        assert store.target.ctype == FLOAT

    def test_symbol_table_contains_globals_and_params(self):
        unit = parse_source("int g[4];\nvoid f(float x) { g[0] = (int) x; }")
        info = analyze(unit)
        assert "g" in info.globals
        assert info.symbol_for("f", "x").ctype == FLOAT

    def test_undeclared_identifier_warns_in_permissive_mode(self):
        unit = parse_source("void f() { y = z + 1; }")
        info = analyze(unit)
        assert len(info.diagnostics.warnings) >= 1

    def test_undeclared_identifier_raises_in_strict_mode(self):
        unit = parse_source("void f() { y = z + 1; }")
        with pytest.raises(SemanticError):
            analyze(unit, permissive=False)

    def test_assignment_to_literal_rejected(self):
        unit = parse_source("void f() { 3 = 4; }")
        with pytest.raises(SemanticError):
            analyze(unit)

    def test_subscript_of_pointer_parameter(self):
        unit = parse_source("void f(short *a) { a[0] = 1; }")
        analyze(unit)
        stmt = unit.functions[0].body.statements[0]
        assert stmt.expr.target.ctype == SHORT

    def test_math_call_type(self):
        unit = parse_source("void f(double x) { x = sqrt(x); }")
        analyze(unit)
        stmt = unit.functions[0].body.statements[0]
        assert stmt.expr.value.ctype == DOUBLE

    def test_multidim_subscript_type(self):
        unit = parse_source("double G[4][4];\nvoid f() { G[1][2] = 0.5; }")
        analyze(unit)
        stmt = unit.functions[0].body.statements[0]
        assert stmt.expr.target.ctype == DOUBLE


class TestPrinter:
    def test_round_trip_parses_again(self):
        source = """
int vec[512] __attribute__((aligned(16)));
int f(int n) {
    int sum = 0;
    #pragma clang loop vectorize_width(4) interleave_count(2)
    for (int i = 0; i < n; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}
"""
        unit = parse_source(source)
        printed = print_unit(unit)
        reparsed = parse_source(printed)
        assert [f.name for f in reparsed.functions] == ["f"]
        loop = next(ast.iter_loops(reparsed.functions[0]))
        assert loop.pragma.vectorize_width == 4

    def test_pragma_emitted_before_loop(self):
        source = """
void f(int *a) {
    #pragma clang loop vectorize_width(8)
    for (int i = 0; i < 8; i++) { a[i] = i; }
}
"""
        printed = print_unit(parse_source(source))
        lines = [line.strip() for line in printed.splitlines()]
        pragma_index = next(i for i, l in enumerate(lines) if l.startswith("#pragma"))
        assert lines[pragma_index + 1].startswith("for (")

    def test_expression_rendering(self):
        unit = parse_source("void f() { x = a[i] * (b + 2); }")
        stmt = unit.functions[0].body.statements[0]
        text = print_expr(stmt.expr)
        assert "a[i]" in text and "*" in text

    def test_if_else_rendering(self):
        source = "void f(int x, int y) { if (x > 0) { y = 1; } else { y = 2; } }"
        printed = print_unit(parse_source(source))
        assert "if (" in printed and "else" in printed

    def test_ternary_and_cast_rendering(self):
        source = "void f(int j, int m, int *b) { b[0] = (j > m ? m : (int) 0); }"
        printed = print_unit(parse_source(source))
        assert "?" in printed

    def test_global_initializer_rendering(self):
        printed = print_unit(parse_source("int x = 3;"))
        assert "int x = 3;" in printed
