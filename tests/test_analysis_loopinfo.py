"""Loop-analysis roll-up tests."""

import pytest

from repro.analysis.loopinfo import analyze_function, analyze_loop
from repro.frontend import parse_source
from repro.ir.lowering import lower_unit


def _analysis(source, name=None):
    functions = lower_unit(parse_source(source))
    function = next(iter(functions.values())) if name is None else functions[name]
    loop = function.innermost_loops()[0]
    return analyze_loop(function, loop)


class TestOperationMix:
    def test_dot_product_mix(self):
        analysis = _analysis(
            "int a[64];\nint f() { int s = 0; for (int i = 0; i < 64; i++) s += a[i] * a[i]; return s; }"
        )
        mix = analysis.operation_mix
        assert mix.int_mul == 1
        assert mix.int_add == 1
        assert mix.loads == 2
        assert mix.stores == 0

    def test_store_counted(self):
        analysis = _analysis(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = b[i] + 1; }"
        )
        assert analysis.operation_mix.stores == 1
        assert analysis.operation_mix.loads == 1
        assert analysis.operation_mix.float_add == 1

    def test_division_and_call_counted(self):
        analysis = _analysis(
            "double a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) b[i] = sqrt(a[i]) / 3.0; }"
        )
        assert analysis.operation_mix.float_div == 1
        assert analysis.operation_mix.math_call == 1

    def test_convert_counted(self):
        analysis = _analysis(
            "void f(int *a, short *b) { for (int i = 0; i < 64; i++) a[i] = (int) b[i]; }"
        )
        assert analysis.operation_mix.convert == 1
        assert analysis.operation_mix.widening_convert == 1

    def test_select_and_compare_counted(self):
        analysis = _analysis(
            "int a[64], b[64];\nvoid f(int m) { for (int i = 0; i < 64; i++)"
            " b[i] = (a[i] > m ? m : a[i]); }"
        )
        assert analysis.operation_mix.select == 1
        assert analysis.operation_mix.compare == 1


class TestDerivedProperties:
    def test_element_bits_widest(self):
        analysis = _analysis(
            "void f(double *a, short *b) { for (int i = 0; i < 64; i++) a[i] = b[i]; }"
        )
        assert analysis.element_bits == 64
        assert analysis.narrowest_element_bits == 16

    def test_vectorizable_simple_loop(self):
        analysis = _analysis(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = b[i]; }"
        )
        assert analysis.is_vectorizable
        assert analysis.max_legal_vf(64) == 64

    def test_early_exit_not_vectorizable(self):
        analysis = _analysis(
            "int a[64];\nvoid f() { for (int i = 0; i < 64; i++) { if (a[i]) break; a[i] = 1; } }"
        )
        assert not analysis.is_vectorizable
        assert analysis.max_legal_vf(64) == 1

    def test_unknown_trip_count_flag(self):
        analysis = _analysis(
            "void f(float *a, int n) { for (int i = 0; i < n; i++) a[i] = 1; }"
        )
        assert analysis.has_unknown_trip_count

    def test_predicate_count(self):
        analysis = _analysis(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++)"
            " { if (a[i] > 0) { b[i] = a[i]; } } }"
        )
        assert analysis.predicate_count == 1
        assert analysis.has_predicates

    def test_reduction_detected_in_analysis(self):
        analysis = _analysis(
            "float a[64];\nfloat f() { float s = 0; for (int i = 0; i < 64; i++) s += a[i]; return s; }"
        )
        assert analysis.has_reduction

    def test_enclosing_vars_for_nested(self):
        functions = lower_unit(parse_source(
            "float G[8][8];\nvoid f(float x) { for (int i = 0; i < 8; i++)"
            " for (int j = 0; j < 8; j++) G[i][j] = x; }"
        ))
        function = functions["f"]
        analysis = analyze_loop(function, function.innermost_loops()[0])
        assert analysis.enclosing_vars == ["i"]

    def test_bytes_per_iteration(self):
        analysis = _analysis(
            "double a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = b[i]; }"
        )
        assert analysis.bytes_per_iteration() == 16

    def test_feature_vector_length_and_content(self):
        analysis = _analysis(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = b[i]; }"
        )
        features = analysis.feature_vector()
        assert len(features) == 20
        assert features[0] == 64.0  # trip count

    def test_analyze_function_covers_all_innermost_loops(self):
        functions = lower_unit(parse_source(
            "float a[8], b[8];\nvoid f() {"
            " for (int i = 0; i < 8; i++) a[i] = 1;"
            " for (int j = 0; j < 8; j++) b[j] = 2; }"
        ))
        nest = analyze_function(functions["f"])
        assert len(nest.loops) == 2
        assert nest.for_loop(functions["f"].innermost_loops()[1]) is not None
