"""Cross-task regression tests for the task-generic evaluation layer.

The paper's headline results are agent-vs-baseline comparisons; these tests
pin the protocol that produces them for *every* registered task:

* ``compare_agents(task=t)`` produces a populated speedup table for all of
  ``vectorization``, ``polly-tiling`` and ``unrolling``,
* same-seed comparison runs are byte-identical serial vs ``workers=2``,
* a warm persistent store makes a rerun simulate nothing — and the report
  says "cache hits", not "no evaluations",
* the third task (loop unrolling) trains end-to-end through
  ``NeuroVectorizer.train`` and behaves at the known edge cases
  (conditional-wrapped nests, out-of-menu factors).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.baseline import BaselineAgent
from repro.agents.brute_force import BruteForceAgent
from repro.agents.decision_tree import DecisionTreeAgent
from repro.agents.nns import NearestNeighborAgent
from repro.core.framework import NeuroVectorizer, TrainingConfig, compare_agents
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.distributed import DiskBackedRewardCache, EvaluationService
from repro.evaluation import (
    ComparisonRunner,
    TaskComparison,
    action_sweep,
    figure_task_comparison,
)
from repro.cache.reward_cache import RewardCache
from repro.simulator.engine import Simulator
from repro.tasks import UnrollingTask, available_tasks, get_task

ALL_TASKS = ("vectorization", "polly-tiling", "unrolling")

TWO_LOOP_SOURCE = """
float a[2048], b[2048];
float c[256][256], d[256][256];
float work() {
    float s = 0;
    for (int i = 0; i < 2048; i++) {
        s += a[i] * b[i];
    }
    for (int r = 0; r < 256; r++) {
        for (int q = 0; q < 256; q++) {
            c[r][q] = c[r][q] + d[q][r];
        }
    }
    return s;
}
"""

STREAM_SOURCE = """
float x[2048], y[2048];
void scale(float alpha) {
    for (int i = 0; i < 2048; i++) {
        y[i] = alpha * x[i];
    }
}
"""

GUARDED_SOURCE = """
float ga[4096], gb[4096], gc[4096];
void guarded(int flag) {
    for (int i = 0; i < 4096; i++) {
        ga[i] = ga[i] + 1.0f;
    }
    if (flag) {
        for (int j = 0; j < 4096; j++) {
            gb[j] = gb[j] * 2.0f;
        }
    }
    for (int k = 0; k < 4096; k++) {
        gc[k] = gc[k] + ga[k];
    }
}
"""


def two_loop_kernel() -> LoopKernel:
    return LoopKernel(name="work", source=TWO_LOOP_SOURCE, function_name="work")


def stream_kernel() -> LoopKernel:
    return LoopKernel(name="stream", source=STREAM_SOURCE, function_name="scale")


def guarded_kernel() -> LoopKernel:
    return LoopKernel(name="guarded", source=GUARDED_SOURCE, function_name="guarded")


def comparison_fingerprint(comparison: TaskComparison):
    """Everything a comparison run produced, in a directly comparable shape."""
    return (
        comparison.task,
        comparison.methods,
        comparison.speedups,
        comparison.cycles,
        comparison.baseline_cycles,
        comparison.decision_log,
    )


def count_simulations(body):
    """Run ``body()`` counting Simulator.simulate calls."""
    calls = {"n": 0}
    original = Simulator.simulate

    def counting(self, *args, **kwargs):
        calls["n"] += 1
        return original(self, *args, **kwargs)

    Simulator.simulate = counting
    try:
        result = body()
    finally:
        Simulator.simulate = original
    return result, calls["n"]


# ---------------------------------------------------------------------------
# compare_agents across every registered task
# ---------------------------------------------------------------------------


class TestCompareAgents:
    def test_all_three_tasks_registered(self):
        assert set(ALL_TASKS) <= set(available_tasks())

    @pytest.mark.parametrize("task_name", ALL_TASKS)
    def test_populated_speedup_table_per_task(self, task_name):
        comparison = compare_agents(
            [two_loop_kernel(), stream_kernel()], task=task_name
        )
        assert comparison.task == task_name
        assert comparison.methods == ["baseline", "random", "brute_force"]
        assert set(comparison.speedups) == {"work", "stream"}
        for kernel_name, row in comparison.speedups.items():
            assert set(row) == set(comparison.methods)
            for value in row.values():
                assert value == value and value > 0  # finite, positive
            assert comparison.baseline_cycles[kernel_name] > 0
        rendered = comparison.format_table().render()
        assert task_name in rendered
        assert "work" in rendered and "stream" in rendered

    @pytest.mark.parametrize("task_name", ALL_TASKS)
    def test_baseline_method_is_exactly_one(self, task_name):
        # task.baseline_action must reproduce measure_baseline exactly —
        # the x=1.0 reference the paper normalises every figure to.
        comparison = compare_agents([two_loop_kernel()], task=task_name)
        assert comparison.speedups["work"]["baseline"] == pytest.approx(1.0)

    @pytest.mark.parametrize("task_name", ALL_TASKS)
    def test_brute_force_never_loses_to_baseline(self, task_name):
        comparison = compare_agents([two_loop_kernel()], task=task_name)
        row = comparison.speedups["work"]
        assert row["brute_force"] >= row["baseline"] - 1e-9

    def test_decision_log_matches_sites_and_menus(self):
        kernel = two_loop_kernel()
        task = get_task("unrolling")
        comparison = compare_agents([kernel], task=task)
        sites = task.decision_sites(kernel)
        for method in comparison.methods:
            decisions = comparison.decisions_for("work", method)
            assert sorted(decisions) == [site.index for site in sites]
            for action in decisions.values():
                assert action[0] in task.menus[0]

    def test_mismatched_agent_task_rejected(self):
        agents = {"brute_force": BruteForceAgent(CompileAndMeasure())}  # vectorization
        with pytest.raises(ValueError, match="vectorization"):
            compare_agents([stream_kernel()], agents=agents, task="unrolling")

    def test_five_reference_agents_run_through_one_comparison(self):
        # The full supervised line-up of the paper's Figure 7 through the
        # task-generic path: baseline, random, brute force, NNS, tree —
        # the embedding-driven pair fitted on the real site embeddings.
        from repro.core.framework import build_embedding_model
        from repro.tasks import get_task

        kernels = [stream_kernel(), two_loop_kernel()]
        task = get_task("vectorization")
        embedding_model = build_embedding_model(kernels)
        runner = ComparisonRunner(task=task, embedding_model=embedding_model)
        observations = [
            task.observation_features(site, embedding_model)
            for kernel in kernels
            for site in task.decision_sites(kernel)
        ]
        labels = [(4, 2), (8, 2), (8, 4)][: len(observations)]
        agents = runner.default_agents(seed=0)
        agents["nns"] = NearestNeighborAgent(k=1).fit(
            np.stack(observations), labels
        )
        agents["decision_tree"] = DecisionTreeAgent(seed=0).fit(
            np.stack(observations), labels
        )
        comparison = runner.run(agents, kernels)
        assert comparison.methods == [
            "baseline", "random", "brute_force", "nns", "decision_tree",
        ]
        assert set(comparison.speedups["stream"]) == set(comparison.methods)

    def test_embedding_driven_agent_without_model_rejected(self):
        # An NNS/tree/policy agent fed the placeholder observation would
        # repeat one decision everywhere — reject instead of tabulating it.
        agents = {
            "nns": NearestNeighborAgent(k=1).fit(np.zeros((1, 2)), [(4, 2)])
        }
        with pytest.raises(ValueError, match="embedding"):
            ComparisonRunner().run(agents, [stream_kernel()])

    def test_figure_driver_wraps_the_comparison(self):
        figure = figure_task_comparison([stream_kernel()], task="polly-tiling")
        assert "polly-tiling" in figure.format_table().render()
        assert figure.geomean("baseline") == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Serial vs sharded identity (same seed, workers=2)
# ---------------------------------------------------------------------------


class TestSerialParallelIdentity:
    @pytest.mark.parametrize("task_name", ALL_TASKS)
    def test_comparison_identical_serial_vs_workers(self, task_name):
        kernels = [two_loop_kernel(), stream_kernel()]
        serial_runner = ComparisonRunner(task=task_name)
        serial = serial_runner.run(serial_runner.default_agents(seed=7), kernels)
        with EvaluationService(CompileAndMeasure(), workers=2) as service:
            parallel_runner = ComparisonRunner(
                task=task_name, evaluation_service=service
            )
            parallel = parallel_runner.run(
                parallel_runner.default_agents(seed=7), kernels
            )
        assert comparison_fingerprint(parallel) == comparison_fingerprint(serial)

    def test_fanned_out_comparison_simulates_only_baselines_in_parent(self):
        # With workers attached, every application (and every brute-force
        # sweep) measures inside the forked workers; the parent's only
        # simulations are the phase-1 baselines.  Count what the baselines
        # alone cost on a fresh cache, then hold the fanned-out run to it.
        kernels = [two_loop_kernel(), stream_kernel()]
        probe = ComparisonRunner(task="unrolling")
        _, baseline_sims = count_simulations(
            lambda: [
                probe.reward_cache.measure_baseline(probe.pipeline, kernel)
                for kernel in kernels
            ]
        )
        assert baseline_sims > 0
        with EvaluationService(CompileAndMeasure(), workers=2) as service:
            runner = ComparisonRunner(task="unrolling", evaluation_service=service)
            comparison, simulations = count_simulations(
                lambda: runner.run(runner.default_agents(seed=7), kernels)
            )
        assert simulations == baseline_sims
        assert set(comparison.speedups) == {"work", "stream"}

    def test_comparison_rejects_service_with_foreign_cache(self):
        with EvaluationService(CompileAndMeasure(), workers=2) as service:
            runner = ComparisonRunner(
                task="unrolling",
                evaluation_service=service,
                reward_cache=service.cache,
            )
            runner.reward_cache = RewardCache()  # simulate a swapped cache
            agents = {"baseline": BaselineAgent(runner.pipeline, task=runner.task)}
            with pytest.raises(ValueError, match="different RewardCache"):
                runner.run(agents, [stream_kernel()])


# ---------------------------------------------------------------------------
# Warm persistent store: rerun simulates nothing, report shows cache hits
# ---------------------------------------------------------------------------


class TestWarmStoreRerun:
    @pytest.mark.parametrize("task_name", ALL_TASKS)
    def test_warm_rerun_zero_simulator_calls(self, task_name, tmp_path):
        kernels = [two_loop_kernel(), stream_kernel()]
        cache_dir = str(tmp_path / task_name)

        cold_cache = DiskBackedRewardCache.open(cache_dir)
        cold_runner = ComparisonRunner(task=task_name, reward_cache=cold_cache)
        cold = cold_runner.run(cold_runner.default_agents(seed=0), kernels)
        cold_cache.close()
        assert cold.cache_misses > 0

        warm_cache = DiskBackedRewardCache.open(cache_dir)
        assert warm_cache.preloaded > 0
        warm_runner = ComparisonRunner(task=task_name, reward_cache=warm_cache)
        warm, simulations = count_simulations(
            lambda: warm_runner.run(warm_runner.default_agents(seed=0), kernels)
        )
        warm_cache.close()
        assert simulations == 0
        assert comparison_fingerprint(warm) == comparison_fingerprint(cold)

    def test_fully_cache_served_run_reports_hits_not_empty(self, tmp_path):
        # Regression: every reward answered by the warm store is still an
        # evaluation — the report must show the hits, and keep the explicit
        # "no evaluations" table for runs that measured nothing at all.
        kernels = [stream_kernel()]
        cache_dir = str(tmp_path / "warm")
        cold_cache = DiskBackedRewardCache.open(cache_dir)
        cold_runner = ComparisonRunner(task="unrolling", reward_cache=cold_cache)
        cold_runner.run(cold_runner.default_agents(seed=0), kernels)
        cold_cache.close()

        warm_cache = DiskBackedRewardCache.open(cache_dir)
        warm_runner = ComparisonRunner(task="unrolling", reward_cache=warm_cache)
        warm = warm_runner.run(warm_runner.default_agents(seed=0), kernels)
        warm_cache.close()
        assert warm.cache_misses == 0
        assert warm.cache_hits > 0
        rendered = warm.cache_report().render()
        assert "no evaluations" not in rendered
        assert "fully cache-served" in rendered

        empty = warm_runner.run(warm_runner.default_agents(seed=0), [])
        assert "no evaluations" in empty.cache_report().render()


# ---------------------------------------------------------------------------
# The third task, end to end
# ---------------------------------------------------------------------------


class TestUnrollingEndToEnd:
    @pytest.fixture(scope="class")
    def trained(self):
        kernels = [two_loop_kernel(), stream_kernel()]
        config = TrainingConfig(
            task="unrolling",
            rl_total_steps=48,
            rl_batch_size=24,
            learning_rate=1e-3,
            pretrain_epochs=1,
            pretrain_samples=2,
            seed=0,
        )
        framework, artifacts = NeuroVectorizer.train(kernels, config)
        yield framework, artifacts, kernels
        framework.close()

    def test_training_runs_and_sets_task(self, trained):
        framework, artifacts, _ = trained
        assert framework.task.name == "unrolling"
        assert len(artifacts.history.iterations) == 2

    def test_optimize_kernel_applies_unroll_pragmas(self, trained):
        framework, _, kernels = trained
        result = framework.optimize_kernel(kernels[1])
        assert result.task == "unrolling"
        assert set(result.decisions) == {0}
        assert result.decisions[0][0] in framework.task.menus[0]
        assert "unroll_count" in result.transformed_source

    def test_framework_compare_agents_includes_the_policy(self, trained):
        framework, _, kernels = trained
        comparison = framework.compare_agents(kernels)
        assert comparison.methods == ["baseline", "random", "brute_force", "rl"]
        for row in comparison.speedups.values():
            assert set(row) == set(comparison.methods)
        assert comparison.geomean("baseline") == pytest.approx(1.0)

    def test_sharded_training_matches_serial(self, tmp_path):
        # The acceptance bar: workers=2 evaluation is byte-identical to
        # serial for the new task, end to end through train().
        kernels = [stream_kernel()]

        def run(workers):
            config = TrainingConfig(
                task="unrolling",
                rl_total_steps=24,
                rl_batch_size=12,
                learning_rate=1e-3,
                pretrain_epochs=0,
                seed=3,
                workers=workers,
            )
            framework, artifacts = NeuroVectorizer.train(kernels, config)
            try:
                rewards = [
                    iteration.reward_mean
                    for iteration in artifacts.history.iterations
                ]
                decisions = framework.decide_sites(kernels[0])
            finally:
                framework.close()
            return rewards, decisions

        assert run(0) == run(2)


class TestUnrollingEdgeCases:
    def test_out_of_menu_unroll_factor_rejected(self):
        with pytest.raises(ValueError, match="unroll"):
            UnrollingTask().cache_key((3,))
        with pytest.raises(ValueError):
            UnrollingTask().cache_key((4, 2))  # wrong arity

    def test_conditional_wrapped_nest_keeps_site_indices_aligned(self):
        # The PR-3 Polly bug class: a loop inside an ``if`` is its own
        # decision site and must map to the same index in the lowered IR's
        # innermost_loops() order, or unroll factors land on the wrong loop.
        kernel = guarded_kernel()
        task = UnrollingTask()
        pipeline = CompileAndMeasure()
        sites = task.decision_sites(kernel)
        assert [site.index for site in sites] == [0, 1, 2]

        ir_function = pipeline.lower_kernel(kernel)
        ir_loops = ir_function.innermost_loops()
        # The extractor's site order matches lowering's loop order by
        # induction variable — including the if-wrapped j loop.
        assert [loop.var for loop in ir_loops] == ["i", "j", "k"]

        # Unrolling exactly one site annotates exactly that loop.
        for index, var in enumerate(["i", "j", "k"]):
            application = task.apply(pipeline, kernel, {index: (8,)})
            lowered = pipeline.lower_kernel(
                kernel, source=application.transformed_source
            )
            annotated = [
                loop.var
                for loop in lowered.innermost_loops()
                if loop.pragma is not None and loop.pragma.unroll_count == 8
            ]
            assert annotated == [var]

    def test_disable_pragma_keeps_the_unroll_factor(self):
        # vectorize(disable) unroll_count(8) is plain 8x scalar unrolling,
        # not a silently dropped hint (shared factors_from_pragma rule).
        from repro.frontend.pragmas import parse_pragma_text
        from repro.vectorizer.planner import factors_from_pragma

        pragma = parse_pragma_text(
            "#pragma clang loop vectorize(disable) unroll_count(8)"
        )
        assert factors_from_pragma(pragma, default_vf=16, default_interleave=4) == (1, 8)
        assert factors_from_pragma(None, 16, 4) == (16, 4)

        pipeline = CompileAndMeasure()
        kernel = stream_kernel()
        annotated = kernel.source.replace(
            "for (int i",
            "#pragma clang loop vectorize(disable) unroll_count(8)\n    for (int i",
        )
        via_pragmas = pipeline.measure_with_pragmas(kernel, source=annotated)
        direct = pipeline.measure_with_factors(kernel, {0: (1, 8)})
        assert via_pragmas.cycles == direct.cycles

    def test_runner_rejects_conflicting_pipeline_or_machine(self):
        from repro.machine.description import MachineDescription

        scalar = MachineDescription(name="scalar-ish", vector_bits=64)
        with pytest.raises(ValueError, match="machine"):
            ComparisonRunner(pipeline=CompileAndMeasure(), machine=scalar)
        with EvaluationService(CompileAndMeasure(), workers=0) as service:
            with pytest.raises(ValueError, match="pipeline"):
                ComparisonRunner(
                    pipeline=CompileAndMeasure(machine=scalar),
                    evaluation_service=service,
                )
            # A distinct but value-equal pipeline is accepted.
            runner = ComparisonRunner(
                pipeline=CompileAndMeasure(), evaluation_service=service
            )
            assert runner.machine == service.pipeline.machine

    def test_apply_matches_evaluate_for_single_site(self):
        task = UnrollingTask()
        pipeline = CompileAndMeasure()
        kernel = stream_kernel()
        assert (
            task.apply(pipeline, kernel, {0: (8,)}).result.cycles
            == task.evaluate(pipeline, kernel, 0, (8,)).cycles
        )

    def test_unrolling_beats_scalar_on_a_reduction(self):
        # The simulator's interleave model gives unrolling its payoff:
        # a float reduction is latency-bound, so some unroll factor must
        # beat the unrolled-by-1 version.
        source = """
        float u[2048], v[2048];
        float dot() {
            float s = 0;
            for (int i = 0; i < 2048; i++) {
                s += u[i] * v[i];
            }
            return s;
        }
        """
        kernel = LoopKernel(name="dot", source=source, function_name="dot")
        task = UnrollingTask()
        pipeline = CompileAndMeasure()
        cycles = {
            unroll: task.evaluate(pipeline, kernel, 0, (unroll,)).cycles
            for unroll in task.menus[0]
        }
        assert min(cycles.values()) < cycles[1]


# ---------------------------------------------------------------------------
# The generalized Figure-1 sweep
# ---------------------------------------------------------------------------


class TestActionSweep:
    def test_sweep_covers_the_whole_menu(self):
        task = get_task("unrolling")
        result = action_sweep(stream_kernel(), task=task)
        assert set(result.grid) == {(u,) for u in task.menus[0]}
        assert result.best_action in result.grid
        assert result.best_speedup == max(result.grid.values())
        rendered = result.format_table().render()
        assert "unroll" in rendered

    def test_two_dimensional_tasks_render_a_matrix(self):
        result = action_sweep(stream_kernel(), task="vectorization")
        rendered = result.format_table().render()
        assert "vf \\ interleave" in rendered
        # One row per VF value plus header/separator/title.
        task = get_task("vectorization")
        assert len(result.grid) == len(task.menus[0]) * len(task.menus[1])

    def test_sweep_is_cache_aware(self):
        from repro.cache.reward_cache import RewardCache

        cache = RewardCache()
        kernel = stream_kernel()
        action_sweep(kernel, task="unrolling", reward_cache=cache)
        misses_after_cold = cache.stats.misses
        _, simulations = count_simulations(
            lambda: action_sweep(kernel, task="unrolling", reward_cache=cache)
        )
        assert simulations == 0
        assert cache.stats.misses == misses_after_cold
