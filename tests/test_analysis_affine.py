"""Affine analysis and access-pattern classification tests."""

import pytest

from repro.analysis.affine import affine_of, classify_access
from repro.analysis.loopinfo import analyze_loop
from repro.frontend import parse_source
from repro.ir.expr import BinOp, Const, LoadOp, ScalarRef
from repro.ir.lowering import lower_unit


def _ir(source, name=None):
    functions = lower_unit(parse_source(source))
    return next(iter(functions.values())) if name is None else functions[name]


class TestAffineForms:
    def test_constant(self):
        form = affine_of(Const(value=5), ["i"])
        assert form.is_constant
        assert form.constant == 5

    def test_induction_variable(self):
        form = affine_of(ScalarRef(name="i"), ["i"])
        assert form.coefficient("i") == 1

    def test_linear_combination(self):
        # 2*i + 3
        expr = BinOp(op="+", lhs=BinOp(op="*", lhs=Const(value=2), rhs=ScalarRef(name="i")),
                     rhs=Const(value=3))
        form = affine_of(expr, ["i"])
        assert form.coefficient("i") == 2
        assert form.constant == 3

    def test_two_variables(self):
        # i*8 + j
        expr = BinOp(op="+", lhs=BinOp(op="*", lhs=ScalarRef(name="i"), rhs=Const(value=8)),
                     rhs=ScalarRef(name="j"))
        form = affine_of(expr, ["i", "j"])
        assert form.coefficient("i") == 8
        assert form.coefficient("j") == 1

    def test_subtraction_and_negation(self):
        expr = BinOp(op="-", lhs=ScalarRef(name="i"), rhs=Const(value=1))
        form = affine_of(expr, ["i"])
        assert form.constant == -1

    def test_shift_as_multiplication(self):
        expr = BinOp(op="<<", lhs=ScalarRef(name="i"), rhs=Const(value=2))
        form = affine_of(expr, ["i"])
        assert form.coefficient("i") == 4

    def test_symbolic_invariant(self):
        expr = BinOp(op="+", lhs=ScalarRef(name="i"), rhs=ScalarRef(name="offset"))
        form = affine_of(expr, ["i"])
        assert form.is_affine
        assert form.symbols == {"offset": 1}

    def test_product_of_variables_not_affine(self):
        expr = BinOp(op="*", lhs=ScalarRef(name="i"), rhs=ScalarRef(name="i"))
        assert not affine_of(expr, ["i"]).is_affine

    def test_load_not_affine(self):
        expr = LoadOp(array="idx", subscripts=(ScalarRef(name="i"),))
        assert not affine_of(expr, ["i"]).is_affine

    def test_difference_is_constant(self):
        a = affine_of(BinOp(op="+", lhs=ScalarRef(name="i"), rhs=Const(value=4)), ["i"])
        b = affine_of(ScalarRef(name="i"), ["i"])
        assert a.difference_is_constant(b) == 4
        c = affine_of(BinOp(op="*", lhs=Const(value=2), rhs=ScalarRef(name="i")), ["i"])
        assert a.difference_is_constant(c) is None

    def test_division_by_even_divisor(self):
        expr = BinOp(op="/", lhs=BinOp(op="*", lhs=Const(value=4), rhs=ScalarRef(name="i")),
                     rhs=Const(value=2))
        form = affine_of(expr, ["i"])
        assert form.coefficient("i") == 2


class TestAccessClassification:
    def _patterns(self, source, name=None):
        ir = _ir(source, name)
        loop = ir.innermost_loops()[0]
        analysis = analyze_loop(ir, loop)
        return {
            (p.access.array, p.access.is_write): p for p in analysis.access_patterns
        }

    def test_contiguous_access(self):
        patterns = self._patterns(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = b[i]; }"
        )
        assert patterns[("b", False)].kind == "contiguous"
        assert patterns[("a", True)].kind == "contiguous"
        assert patterns[("b", False)].stride_elements == 1

    def test_strided_access(self):
        patterns = self._patterns(
            "float a[32], b[64];\nvoid f() { for (int i = 0; i < 32; i++) a[i] = b[2*i]; }"
        )
        assert patterns[("b", False)].kind == "strided"
        assert patterns[("b", False)].stride_elements == 2

    def test_loop_step_contributes_to_stride(self):
        patterns = self._patterns(
            "float a[64];\nvoid f() { for (int i = 0; i < 64; i += 4) a[i] = 0; }"
        )
        assert patterns[("a", True)].stride_elements == 4

    def test_invariant_access(self):
        patterns = self._patterns(
            "float a[64], b[4];\nvoid f(int k) { for (int i = 0; i < 64; i++) a[i] = b[k]; }"
        )
        assert patterns[("b", False)].kind == "invariant"

    def test_gather_through_index_array(self):
        patterns = self._patterns(
            "int idx[64];\nfloat a[64], b[256];\n"
            "void f() { for (int i = 0; i < 64; i++) a[i] = b[idx[i]]; }"
        )
        assert patterns[("b", False)].kind == "gather"
        assert patterns[("b", False)].stride_elements is None

    def test_matrix_row_access_is_contiguous(self):
        patterns = self._patterns(
            "float A[16][16], out[16];\nvoid f() {"
            " for (int i = 0; i < 16; i++) { float s = 0;"
            " for (int j = 0; j < 16; j++) { s += A[i][j]; } out[i] = s; } }"
        )
        assert patterns[("A", False)].kind == "contiguous"

    def test_matrix_column_access_is_strided(self):
        patterns = self._patterns(
            "float A[16][16], out[16];\nvoid f() {"
            " for (int j = 0; j < 16; j++) { float s = 0;"
            " for (int i = 0; i < 16; i++) { s += A[i][j]; } out[j] = s; } }"
        )
        assert patterns[("A", False)].kind == "strided"
        assert patterns[("A", False)].stride_elements == 16

    def test_stride_bytes(self):
        patterns = self._patterns(
            "double a[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = 1.0; }"
        )
        assert patterns[("a", True)].stride_bytes == 8

    def test_scalar_subscript_written_in_body_is_gather(self):
        patterns = self._patterns(
            "int a[64], b[64];\nvoid f() {"
            " for (int i = 0; i < 64; i++) { int j = a[i]; b[j] = 1; } }"
        )
        assert patterns[("b", True)].kind == "gather"
