"""Dependence analysis and reduction recognition tests."""

import pytest

from repro.analysis.dependence import analyze_dependences, max_safe_vf
from repro.analysis.loopinfo import analyze_loop
from repro.analysis.reduction import find_reductions
from repro.frontend import parse_source
from repro.ir.lowering import lower_unit


def _loop_and_function(source, name=None):
    functions = lower_unit(parse_source(source))
    function = next(iter(functions.values())) if name is None else functions[name]
    return function, function.innermost_loops()[0]


class TestDependences:
    def test_independent_elementwise(self):
        function, loop = _loop_and_function(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = b[i]; }"
        )
        graph = analyze_dependences(loop, function.arrays)
        assert graph.min_carried_distance() is None
        assert max_safe_vf(graph) == 64

    def test_carried_dependence_distance(self):
        function, loop = _loop_and_function(
            "float a[64];\nvoid f() { for (int i = 4; i < 64; i++) a[i] = a[i-4]; }"
        )
        graph = analyze_dependences(loop, function.arrays)
        assert graph.min_carried_distance() == 4
        assert max_safe_vf(graph) == 4

    def test_distance_one_prevents_vectorization(self):
        function, loop = _loop_and_function(
            "float a[64];\nvoid f() { for (int i = 1; i < 64; i++) a[i] = a[i-1] + 1; }"
        )
        graph = analyze_dependences(loop, function.arrays)
        assert graph.min_carried_distance() == 1
        assert max_safe_vf(graph) == 1

    def test_read_read_pairs_ignored(self):
        function, loop = _loop_and_function(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) b[i] = a[i] + a[i+1]; }"
        )
        graph = analyze_dependences(loop, function.arrays)
        # a[i] vs a[i+1] are both reads: no dependence recorded between them.
        assert all(
            dep.source.array != "a" or dep.sink.array != "a"
            for dep in graph.dependences
        )

    def test_self_store_at_same_index_not_carried(self):
        function, loop = _loop_and_function(
            "int a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = a[i] + b[i]; }"
        )
        graph = analyze_dependences(loop, function.arrays)
        assert graph.min_carried_distance() is None
        assert max_safe_vf(graph) == 64

    def test_gather_subscript_is_unknown_dependence(self):
        function, loop = _loop_and_function(
            "int idx[64];\nfloat a[64], b[64];\n"
            "void f() { for (int i = 0; i < 64; i++) a[idx[i]] = b[i]; }"
        )
        graph = analyze_dependences(loop, function.arrays)
        assert graph.has_unknown_dependence
        assert max_safe_vf(graph) == 1

    def test_different_arrays_never_depend(self):
        function, loop = _loop_and_function(
            "float a[64], b[64];\nvoid f() { for (int i = 0; i < 64; i++) { a[i] = 1; b[i] = 2; } }"
        )
        graph = analyze_dependences(loop, function.arrays)
        assert not graph.carried

    def test_gcd_test_proves_independence(self):
        # writes even elements, reads odd elements
        function, loop = _loop_and_function(
            "float a[128];\nvoid f() { for (int i = 0; i < 63; i++) a[2*i] = a[2*i+1]; }"
        )
        graph = analyze_dependences(loop, function.arrays)
        assert max_safe_vf(graph) == 64

    def test_scalar_recurrence_detected(self):
        function, loop = _loop_and_function(
            "float a[64], b[64];\nvoid f() {"
            " float carry = 0; for (int i = 0; i < 64; i++) { carry = a[i] - carry; b[i] = carry; } }"
        )
        graph = analyze_dependences(loop, function.arrays)
        assert "carry" in graph.scalar_recurrences
        assert max_safe_vf(graph) == 1

    def test_reduction_not_reported_as_recurrence(self):
        function, loop = _loop_and_function(
            "float a[64];\nfloat f() { float s = 0; for (int i = 0; i < 64; i++) s += a[i]; return s; }"
        )
        reductions = find_reductions(loop)
        graph = analyze_dependences(
            loop, function.arrays, reduction_vars=[r.variable for r in reductions]
        )
        assert graph.scalar_recurrences == []

    def test_temporary_scalar_not_a_recurrence(self):
        function, loop = _loop_and_function(
            "int a[64], b[64];\nvoid f(int m) {"
            " for (int i = 0; i < 64; i++) { int j = a[i]; b[i] = (j > m ? m : 0); } }"
        )
        graph = analyze_dependences(loop, function.arrays)
        assert graph.scalar_recurrences == []

    def test_outer_variable_treated_as_symbol(self):
        function, loop = _loop_and_function(
            "float A[16][16];\nvoid f() { for (int i = 0; i < 16; i++)"
            " for (int j = 0; j < 16; j++) A[i][j] = A[i][j] * 2; }"
        )
        graph = analyze_dependences(loop, function.arrays, enclosing_vars=["i"])
        assert max_safe_vf(graph) == 64


class TestReductions:
    def _loop(self, source):
        return _loop_and_function(source)[1]

    def test_sum_reduction(self):
        loop = self._loop(
            "int a[64];\nint f() { int s = 0; for (int i = 0; i < 64; i++) s += a[i]; return s; }"
        )
        reductions = find_reductions(loop)
        assert len(reductions) == 1
        assert reductions[0].variable == "s"
        assert reductions[0].op == "+"

    def test_dot_product_reduction(self):
        loop = self._loop(
            "float a[64], b[64];\nfloat f() { float s = 0;"
            " for (int i = 0; i < 64; i++) s += a[i] * b[i]; return s; }"
        )
        reductions = find_reductions(loop)
        assert reductions[0].op == "+"
        assert reductions[0].is_float

    def test_product_reduction(self):
        loop = self._loop(
            "float a[64];\nfloat f() { float p = 1;"
            " for (int i = 0; i < 64; i++) p *= a[i]; return p; }"
        )
        assert find_reductions(loop)[0].op == "*"

    def test_max_reduction_via_ternary(self):
        loop = self._loop(
            "int a[64];\nint f() { int m = 0;"
            " for (int i = 0; i < 64; i++) m = (m < a[i] ? a[i] : m); return m; }"
        )
        reductions = find_reductions(loop)
        assert len(reductions) == 1
        assert reductions[0].op in ("max", "min")

    def test_bitwise_or_reduction(self):
        loop = self._loop(
            "unsigned int a[64];\nunsigned int f() { unsigned int m = 0;"
            " for (int i = 0; i < 64; i++) m |= a[i]; return m; }"
        )
        assert find_reductions(loop)[0].op == "|"

    def test_non_associative_update_not_a_reduction(self):
        loop = self._loop(
            "float a[64];\nfloat f() { float s = 0;"
            " for (int i = 0; i < 64; i++) s = a[i] - s; return s; }"
        )
        assert find_reductions(loop) == []

    def test_variable_used_elsewhere_not_a_reduction(self):
        loop = self._loop(
            "float a[64], b[64];\nfloat f() { float s = 0;"
            " for (int i = 0; i < 64; i++) { s += a[i]; b[i] = s; } return s; }"
        )
        assert find_reductions(loop) == []

    def test_induction_variable_not_a_reduction(self):
        loop = self._loop(
            "int a[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = i; }"
        )
        assert find_reductions(loop) == []

    def test_plain_overwrite_not_a_reduction(self):
        loop = self._loop(
            "float a[64];\nfloat f() { float last = 0;"
            " for (int i = 0; i < 64; i++) last = a[i]; return last; }"
        )
        assert find_reductions(loop) == []
