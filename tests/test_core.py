"""Core framework tests: loop extraction, pragma injection, pipeline, facade."""

import numpy as np
import pytest

from repro.agents.baseline import BaselineAgent
from repro.agents.brute_force import BruteForceAgent
from repro.core.framework import NeuroVectorizer, build_embedding_model
from repro.core.loop_extractor import extract_loops
from repro.core.pipeline import CompileAndMeasure
from repro.core.pragma_injector import inject_pragma_line, inject_pragmas, strip_loop_pragmas
from repro.datasets.kernels import LoopKernel
from repro.datasets.motivating import dot_product_kernel
from repro.frontend.pragmas import parse_pragma_text


NESTED_SOURCE = """
float A[64][64], B[64][64], C[64][64];
void matmul(float alpha) {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
            float sum = 0;
            for (int k = 0; k < 64; k++) {
                sum += alpha * A[i][k] * B[k][j];
            }
            C[i][j] = sum;
        }
    }
}
"""

TWO_LOOP_SOURCE = """
float a[256], b[256];
void two(float alpha) {
    for (int i = 0; i < 256; i++) {
        a[i] = alpha * a[i];
    }
    for (int j = 0; j < 256; j++) {
        b[j] = a[j] + b[j];
    }
}
"""


class TestLoopExtractor:
    def test_extracts_innermost_loops_only(self):
        loops = extract_loops(NESTED_SOURCE)
        assert len(loops) == 1
        assert loops[0].ast_loop is not loops[0].nest_root
        assert loops[0].nest_depth == 3

    def test_extracts_all_top_level_loops(self):
        loops = extract_loops(TWO_LOOP_SOURCE)
        assert len(loops) == 2
        assert [loop.loop_index for loop in loops] == [0, 1]

    def test_source_line_points_at_innermost_for(self):
        loops = extract_loops(NESTED_SOURCE)
        lines = NESTED_SOURCE.split("\n")
        assert "for (int k" in lines[loops[0].source_line - 1]

    def test_function_filter(self):
        source = TWO_LOOP_SOURCE + "\nvoid other(int *p) { for (int i = 0; i < 4; i++) p[i] = i; }"
        loops = extract_loops(source, function_name="other")
        assert len(loops) == 1
        assert loops[0].function_name == "other"

    def test_source_text_contains_whole_nest(self):
        loops = extract_loops(NESTED_SOURCE)
        assert "for (i = 0" in loops[0].source_text or "for (int i" in loops[0].source_text
        assert "sum" in loops[0].source_text

    def test_extractor_matches_ir_loop_order(self, pipeline):
        kernel = LoopKernel(name="two", source=TWO_LOOP_SOURCE, function_name="two")
        loops = extract_loops(kernel.source, function_name="two")
        ir = pipeline.lower_kernel(kernel)
        assert len(loops) == len(ir.innermost_loops())


class TestPragmaInjection:
    def test_inject_single_pragma(self):
        loops = extract_loops(NESTED_SOURCE)
        injected = inject_pragma_line(NESTED_SOURCE, loops[0].source_line, 8, 4)
        pragmas = [parse_pragma_text(line) for line in injected.splitlines()]
        pragmas = [p for p in pragmas if p is not None]
        assert len(pragmas) == 1
        assert pragmas[0].vectorize_width == 8

    def test_injected_pragma_lands_before_innermost_loop(self):
        loops = extract_loops(NESTED_SOURCE)
        injected = inject_pragma_line(NESTED_SOURCE, loops[0].source_line, 16, 2)
        lines = injected.splitlines()
        pragma_line = next(i for i, l in enumerate(lines) if "#pragma" in l)
        assert "for (int k" in lines[pragma_line + 1]

    def test_inject_pragmas_for_multiple_loops(self):
        injected = inject_pragmas(TWO_LOOP_SOURCE, {0: (8, 2), 1: (4, 4)})
        parsed = [parse_pragma_text(line) for line in injected.splitlines()]
        parsed = [p for p in parsed if p is not None]
        assert len(parsed) == 2
        assert {p.vectorize_width for p in parsed} == {8, 4}

    def test_injection_is_idempotent(self):
        once = inject_pragmas(TWO_LOOP_SOURCE, {0: (8, 2)})
        twice = inject_pragmas(once, {0: (8, 2)})
        assert once == twice

    def test_strip_loop_pragmas(self):
        injected = inject_pragmas(TWO_LOOP_SOURCE, {0: (8, 2)})
        assert strip_loop_pragmas(injected).count("#pragma") == 0

    def test_injected_source_round_trips_through_frontend(self, pipeline):
        injected = inject_pragmas(NESTED_SOURCE, {0: (32, 8)}, function_name="matmul")
        kernel = LoopKernel(name="mm", source=injected, function_name="matmul")
        ir = pipeline.lower_kernel(kernel)
        loop = ir.innermost_loops()[0]
        assert loop.pragma.vectorize_width == 32
        assert loop.pragma.interleave_count == 8

    def test_indentation_matches_target_line(self):
        loops = extract_loops(NESTED_SOURCE)
        injected = inject_pragma_line(NESTED_SOURCE, loops[0].source_line, 8, 2)
        lines = injected.splitlines()
        pragma_line = next(l for l in lines if "#pragma" in l)
        target_line = lines[lines.index(pragma_line) + 1]
        pragma_indent = len(pragma_line) - len(pragma_line.lstrip())
        target_indent = len(target_line) - len(target_line.lstrip())
        assert pragma_indent == target_indent


class TestCompileAndMeasure:
    def test_baseline_vs_scalar(self, pipeline, dot_kernel):
        baseline = pipeline.measure_baseline(dot_kernel)
        scalar = pipeline.measure_scalar(dot_kernel)
        assert baseline.cycles < scalar.cycles
        assert scalar.speedup_over(baseline) < 1.0

    def test_measure_with_factors_beats_baseline_for_good_choice(self, pipeline, dot_kernel):
        baseline = pipeline.measure_baseline(dot_kernel)
        tuned = pipeline.measure_with_factors(dot_kernel, {0: (8, 8)})
        assert tuned.cycles < baseline.cycles

    def test_pragma_and_factor_paths_agree(self, pipeline, dot_kernel):
        by_factors = pipeline.measure_with_factors(dot_kernel, {0: (16, 4)})
        injected = inject_pragmas(dot_kernel.source, {0: (16, 4)},
                                  function_name=dot_kernel.function_name)
        by_pragmas = pipeline.measure_with_pragmas(dot_kernel, source=injected)
        assert by_factors.cycles == pytest.approx(by_pragmas.cycles, rel=1e-9)

    def test_factors_reported_after_clamping(self, pipeline):
        kernel = LoopKernel(
            name="dep",
            source="float a[64];\nvoid f() { for (int i = 4; i < 64; i++) a[i] = a[i-4]; }",
            function_name="f",
        )
        result = pipeline.measure_with_factors(kernel, {0: (64, 2)})
        assert result.factors[0][0] == 4  # clamped by the dependence distance

    def test_compile_seconds_positive(self, pipeline, dot_kernel):
        result = pipeline.measure_baseline(dot_kernel)
        assert result.compile_seconds > 0

    def test_bindings_respected(self, pipeline):
        kernel = LoopKernel(
            name="sym",
            source="void f(float *a, int n) { for (int i = 0; i < n; i++) a[i] = 1; }",
            function_name="f",
            bindings={"n": 64},
        )
        big = LoopKernel(name="sym2", source=kernel.source, function_name="f",
                         bindings={"n": 8192})
        assert pipeline.measure_baseline(big).cycles > pipeline.measure_baseline(kernel).cycles


class TestNeuroVectorizerFacade:
    @pytest.fixture(scope="class")
    def framework(self):
        kernels = [dot_product_kernel()]
        embedding = build_embedding_model(kernels)
        pipeline = CompileAndMeasure()
        return NeuroVectorizer(embedding, BruteForceAgent(pipeline), pipeline)

    def test_vectorize_kernel_improves_over_baseline(self, framework, dot_kernel):
        result = framework.vectorize_kernel(dot_kernel)
        assert result.speedup_over_baseline >= 1.0
        assert result.reward >= 0.0
        assert len(result.decisions) == 1
        assert "#pragma clang loop" in result.vectorized_source

    def test_vectorize_source_entry_point(self, framework):
        result = framework.vectorize_source(
            "float a[1024], b[1024];\nvoid f() { for (int i = 0; i < 1024; i++) a[i] = b[i] * 2; }"
        )
        assert result.decisions[0].vf >= 1
        assert "#pragma clang loop" in result.vectorized_source

    def test_decisions_render_as_pragmas(self, framework, dot_kernel):
        result = framework.vectorize_kernel(dot_kernel)
        assert result.decisions[0].as_pragma().startswith("#pragma clang loop")

    def test_observe_loop_dimension(self, framework, dot_kernel):
        loops = extract_loops(dot_kernel.source, function_name=dot_kernel.function_name)
        observation = framework.observe_loop(loops[0])
        assert observation.shape == (framework.embedding_model.config.code_vector_dim,)

    def test_baseline_agent_framework_is_neutral(self, dot_kernel):
        kernels = [dot_product_kernel()]
        embedding = build_embedding_model(kernels)
        pipeline = CompileAndMeasure()
        framework = NeuroVectorizer(embedding, BaselineAgent(pipeline), pipeline)
        result = framework.vectorize_kernel(dot_kernel)
        assert result.speedup_over_baseline == pytest.approx(1.0, rel=1e-9)

    def test_vectorize_source_without_loops_raises(self, framework):
        with pytest.raises(ValueError):
            framework.vectorize_source("int f() { return 3; }")
