"""Tests for the fleet evaluation subsystem (repro.fleet)."""

from __future__ import annotations

import pytest

from fleet_utils import (
    add_kernel,
    fleet_service,
    grid_requests,
    outcome_tuples,
    scale_kernel,
    serial_outcomes,
    start_workers,
    task_requests,
    worker_address,
)
from repro.cache.reward_cache import CachedMeasurement, RewardCache, RewardKey
from repro.core.pipeline import CompileAndMeasure
from repro.distributed import DiskBackedRewardCache, EvaluationService
from repro.evaluation.report import (
    format_cache_stats_table,
    format_fleet_stats_table,
)
from repro.fleet import (
    FleetEvaluationService,
    FleetProtocolError,
    FleetStats,
    WorkerFaults,
)
from repro.fleet.protocol import (
    decode_entries,
    decode_message,
    encode_entries,
    encode_message,
    work_message,
)
from repro.tasks import get_task


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestFleetProtocol:
    def test_message_round_trip(self):
        message = work_message(7, "site", "deadbeef" * 5, 0, (4, 2), "vectorization")
        assert decode_message(encode_message(message)) == message

    def test_malformed_line_raises_protocol_error(self):
        with pytest.raises(FleetProtocolError):
            decode_message(b"{not json")

    def test_entry_round_trip(self):
        key = RewardKey(
            kernel_hash="k" * 40,
            machine_hash="m" * 40,
            loop_index=-3,
            action=(0, 4, 2),
            task="vectorization",
            default_symbol_value=256,
        )
        entries = [(key, CachedMeasurement(cycles=123.5, compile_seconds=0.25))]
        decoded = decode_entries(encode_entries(entries))
        assert decoded == entries


# ---------------------------------------------------------------------------
# Sharded evaluation == serial
# ---------------------------------------------------------------------------


class TestFleetSharding:
    def test_two_worker_fleet_matches_serial(self):
        requests = grid_requests(add_kernel()) + grid_requests(scale_kernel())
        serial = serial_outcomes(requests)
        with start_workers(2) as workers, fleet_service(workers) as service:
            assert service.workers == 2
            assert outcome_tuples(service.evaluate(requests)) == serial
            assert service.stats.completed == len(requests)
            assert sum(service.stats.per_worker_completed.values()) == len(requests)
            assert service.stats.errors == 0

    @pytest.mark.parametrize("task_name", ["polly-tiling", "unrolling"])
    def test_task_payloads_shard_identically_to_serial(self, task_name):
        task = get_task(task_name)
        requests = task_requests(task, [add_kernel(), scale_kernel()])
        serial = serial_outcomes(requests, task=task)
        with start_workers(2) as workers, fleet_service(workers) as service:
            assert outcome_tuples(service.evaluate(requests, task=task)) == serial

    def test_kernel_payload_ships_once_per_worker(self):
        with start_workers(2) as workers, fleet_service(workers) as service:
            service.evaluate(
                grid_requests(add_kernel(), vfs=(1, 2))
                + grid_requests(scale_kernel(), vfs=(1, 2))
            )
            shipped = sum(worker.kernels_received for worker in workers)
            # One shard per kernel: each kernel's source crossed the wire once.
            assert shipped == 2
            service.evaluate(
                grid_requests(add_kernel(), vfs=(4, 8))
                + grid_requests(scale_kernel(), vfs=(4, 8))
            )
            assert sum(worker.kernels_received for worker in workers) == shipped

    def test_second_evaluation_is_all_cache_hits(self):
        requests = grid_requests(add_kernel())
        with start_workers(2) as workers, fleet_service(workers) as service:
            service.evaluate(requests)
            dispatched = service.stats.dispatched
            outcomes = service.evaluate(requests)
            assert all(outcome.was_cached for outcome in outcomes)
            assert service.stats.dispatched == dispatched

    def test_worker_error_surfaces_as_runtime_error(self):
        from repro.datasets.kernels import LoopKernel

        broken = LoopKernel(
            name="broken", source="int f() { return 0; }", function_name="missing"
        )
        with start_workers(1) as workers, fleet_service(workers) as service:
            future = service.submit([(broken, 0, 4, 1)])
            with pytest.raises(RuntimeError):
                future.result()
            assert service.stats.errors == 1

    def test_shared_store_dir_persists_fleet_measurements(self, tmp_path):
        requests = grid_requests(add_kernel())
        with start_workers(1, store_dir=str(tmp_path)) as workers:
            with fleet_service(workers) as service:
                expected = outcome_tuples(service.evaluate(requests))
        warm = DiskBackedRewardCache.open(str(tmp_path))
        assert warm.preloaded >= len(requests)
        service = EvaluationService(CompileAndMeasure(), warm, workers=0)
        outcomes = service.evaluate(requests)
        assert all(outcome.was_cached for outcome in outcomes)
        assert outcome_tuples(outcomes) == expected
        warm.close()


# ---------------------------------------------------------------------------
# Fault tolerance
# ---------------------------------------------------------------------------


class TestFleetFaults:
    def test_worker_death_reshards_byte_identically(self):
        requests = grid_requests(add_kernel()) + grid_requests(scale_kernel())
        serial = serial_outcomes(requests)
        faults = [WorkerFaults(die_after=2), None]
        with start_workers(2, faults=faults) as workers:
            with fleet_service(workers) as service:
                assert outcome_tuples(service.evaluate(requests)) == serial
                assert service.stats.workers_lost == 1
                assert service.stats.reshards > 0
                assert service.stats.retries > 0
                assert service.workers == 1

    def test_total_worker_loss_completes_inline(self):
        requests = grid_requests(add_kernel())
        serial = serial_outcomes(requests)
        with start_workers(1, faults=[WorkerFaults(die_after=1)]) as workers:
            with fleet_service(workers) as service:
                assert outcome_tuples(service.evaluate(requests)) == serial
                assert service.stats.workers_lost == 1
                assert service.stats.inline_evaluations > 0
                assert service.workers == 0
                # A dead fleet degrades to the serial batcher, not an error.
                follow_up = grid_requests(scale_kernel())
                assert outcome_tuples(service.evaluate(follow_up)) == serial_outcomes(
                    follow_up
                )
                assert service.stats.serial_batches == 1

    def test_dropped_heartbeats_detected_and_resharded(self):
        requests = grid_requests(add_kernel()) + grid_requests(scale_kernel())
        serial = serial_outcomes(requests)
        faults = [WorkerFaults(drop_heartbeats_after=2), None]
        with start_workers(2, faults=faults) as workers:
            with fleet_service(workers) as service:
                assert outcome_tuples(service.evaluate(requests)) == serial
                assert service.stats.workers_lost == 1

    def test_torn_connection_resharded(self):
        requests = grid_requests(add_kernel()) + grid_requests(scale_kernel())
        serial = serial_outcomes(requests)
        faults = [WorkerFaults(tear_after=2), None]
        with start_workers(2, faults=faults) as workers:
            with fleet_service(workers) as service:
                assert outcome_tuples(service.evaluate(requests)) == serial
                assert service.stats.workers_lost == 1

    def test_connect_degrades_to_local_service_when_unreachable(self):
        service = FleetEvaluationService.connect(
            CompileAndMeasure(),
            RewardCache(),
            addresses=["127.0.0.1:9"],  # discard port: nothing listens
            connect_timeout=0.2,
        )
        try:
            assert isinstance(service, EvaluationService)
            requests = grid_requests(add_kernel())
            assert outcome_tuples(service.evaluate(requests)) == serial_outcomes(
                requests
            )
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Speculative prefetch
# ---------------------------------------------------------------------------


class TestFleetPrefetch:
    def test_settled_prefetch_turns_demand_into_hits(self):
        requests = grid_requests(add_kernel())
        serial = serial_outcomes(requests)
        with start_workers(2) as workers, fleet_service(workers) as service:
            assert service.prefetch(requests) == len(requests)
            service.settle()
            outcomes = service.evaluate(requests)
            assert outcome_tuples(outcomes) == serial
            assert all(outcome.was_cached for outcome in outcomes)
            assert service.stats.prefetch_hits == len(requests)
            assert service.stats.demand_dispatched == 0
            assert service.stats.waits_converted == 1.0

    def test_demand_joins_in_flight_prefetch(self):
        requests = grid_requests(add_kernel())
        serial = serial_outcomes(requests)
        with start_workers(2) as workers, fleet_service(workers) as service:
            assert service.prefetch(requests) == len(requests)
            # No settle(): results drain only inside result(), so every
            # demand submit below deterministically finds its key in flight.
            outcomes = service.evaluate(requests)
            assert outcome_tuples(outcomes) == serial
            assert service.stats.prefetch_joined == len(requests)
            assert service.stats.demand_dispatched == 0
            assert service.stats.waits_converted == 1.0

    def test_prefetch_skips_cached_and_in_flight_keys(self):
        requests = grid_requests(add_kernel())
        with start_workers(2) as workers, fleet_service(workers) as service:
            service.evaluate(requests)
            assert service.prefetch(requests) == 0  # warm: nothing to do
            fresh = grid_requests(scale_kernel())
            assert service.prefetch(fresh) == len(fresh)
            assert service.prefetch(fresh) == 0  # already in flight
            service.settle()
            assert service.stats.prefetch_issued == len(fresh)

    def test_prefetcher_speculates_policy_top_actions(self):
        from repro.core.framework import build_embedding_model
        from repro.fleet.prefetch import SpeculativePrefetcher
        from repro.rl.env import VectorizationEnv, build_samples
        from repro.rl.policy import make_policy

        kernels = [add_kernel(), scale_kernel()]
        embedding = build_embedding_model(kernels)
        pipeline = CompileAndMeasure()
        samples = build_samples(kernels, embedding, pipeline)
        with start_workers(2) as workers:
            with fleet_service(workers, prefetch_top_k=4) as service:
                env = VectorizationEnv(
                    samples,
                    pipeline=pipeline,
                    seed=0,
                    shuffle=False,
                    evaluation_service=service,
                )
                policy = make_policy("discrete", env.observation_dim, seed=0)
                prefetcher = SpeculativePrefetcher(env, policy, service)
                issued = prefetcher.prefetch()
                assert 0 < issued <= 4 * len(samples)
                assert service.stats.prefetch_issued == issued
                service.settle()
                assert service.stats.completed == issued


# ---------------------------------------------------------------------------
# Whole-kernel application fan-out
# ---------------------------------------------------------------------------


class TestMeasureApplications:
    def test_fleet_fan_out_matches_serial_apply(self):
        task = get_task("vectorization")
        decisions = {0: (4, 2)}
        jobs = [(add_kernel(), decisions), (scale_kernel(), decisions)]

        serial_cache = RewardCache()
        expected = [
            task.apply(
                CompileAndMeasure(), kernel, plan, reward_cache=serial_cache
            ).result.cycles
            for kernel, plan in jobs
        ]

        with start_workers(2) as workers, fleet_service(workers) as service:
            flags = service.measure_applications(task, jobs, detail=True)
            assert flags == [True, True]
            # Per-lifetime dedup: a rerun dispatches nothing.
            assert service.measure_applications(task, jobs, detail=True) == [
                False,
                False,
            ]
            applied = [
                task.apply(
                    service.pipeline, kernel, plan, reward_cache=service.cache
                ).result.cycles
                for kernel, plan in jobs
            ]
        assert applied == expected

    def test_local_service_detail_flags(self):
        task = get_task("vectorization")
        jobs = [(add_kernel(), {0: (2, 1)}), (scale_kernel(), {0: (2, 1)})]
        with EvaluationService(CompileAndMeasure(), workers=1) as service:
            assert service.measure_applications(task, jobs, detail=True) == [
                True,
                True,
            ]
            assert service.measure_applications(task, jobs) == 0  # deduped


# ---------------------------------------------------------------------------
# Rollout peeking (the prefetcher's lookahead)
# ---------------------------------------------------------------------------


class TestPeekUpcoming:
    @staticmethod
    def _env(seed: int = 3, shuffle: bool = True):
        from repro.core.framework import build_embedding_model
        from repro.rl.env import VectorizationEnv, build_samples

        kernels = [add_kernel(), scale_kernel()]
        embedding = build_embedding_model(kernels)
        pipeline = CompileAndMeasure()
        samples = build_samples(kernels, embedding, pipeline)
        return VectorizationEnv(samples, pipeline=pipeline, seed=seed, shuffle=shuffle)

    def test_peek_matches_next_batch_without_advancing(self):
        env = self._env(shuffle=False)
        peeked = env.peek_upcoming(2)
        assert env.peek_upcoming(2) == peeked  # idempotent, no cursor motion
        served = [entry[0] for entry in env.next_batch(2)]
        assert served == peeked

    def test_interleaved_peeks_leave_rollout_order_unchanged(self):
        with_peeks = self._env()
        reference = self._env()
        served, expected = [], []
        for _ in range(3):
            with_peeks.peek_upcoming(5)
            served.extend(entry[0].loop_index for entry in with_peeks.next_batch(2))
            with_peeks.peek_upcoming(1)
            expected.extend(entry[0].loop_index for entry in reference.next_batch(2))
        assert served == expected

    def test_epoch_boundary_serves_stable_stand_in(self):
        env = self._env(shuffle=False)
        env.next_batch(len(env.samples))  # exhaust the epoch
        assert env.peek_upcoming(2) == env.samples[:2]


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


class TestFleetReports:
    def test_fleet_stats_table_renders_robustness_counters(self):
        stats = FleetStats()
        stats.record_dispatch("w0")
        stats.record_completion("w0")
        stats.prefetch_issued = 4
        stats.prefetch_hits = 3
        rendered = format_fleet_stats_table(stats).render()
        assert "re-shards" in rendered
        assert "async waits converted" in rendered
        assert "worker w0 completed" in rendered

    def test_cache_table_splits_speculative_hits(self):
        cache = RewardCache()
        stats = FleetStats()
        stats.prefetch_issued = 2
        stats.prefetch_hits = 2
        rendered = format_cache_stats_table(cache.stats, fleet=stats).render()
        assert "hits (speculative)" in rendered
        assert "hits (demand)" in rendered

    def test_register_listen_path_accepts_dialing_worker(self):
        from repro.fleet import FleetCoordinator, FleetWorker

        pipeline = CompileAndMeasure()
        coordinator = FleetCoordinator(
            pipeline.machine, pipeline.default_symbol_value
        )
        host, port = coordinator.listen()
        worker = FleetWorker()
        worker.start()
        try:
            worker.dial(host, port)
            deadline = 50
            while not coordinator.live_workers() and deadline:
                import time

                time.sleep(0.05)
                deadline -= 1
            assert coordinator.live_workers() == [worker.name]
            service = FleetEvaluationService(
                pipeline, RewardCache(), coordinator=coordinator
            )
            requests = grid_requests(add_kernel())
            assert outcome_tuples(
                service.evaluate(requests)
            ) == serial_outcomes(requests)
            service.close()
        finally:
            worker.stop()


def test_worker_address_helper():
    from repro.fleet import FleetWorker

    worker = FleetWorker()
    worker.start()
    try:
        host, port = worker.address
        assert worker_address(worker) == f"{host}:{port}"
        assert port > 0
    finally:
        worker.stop()
