"""Byte-identity regression suite for the fused PPO update path.

The fused kernel (:mod:`repro.rl.fused_update`), the fused composite ops
(:func:`repro.nn.ops.ppo_surrogate`, :func:`repro.nn.ops.entropy_from_logits`)
and the one-pass simulator sweep (:mod:`repro.simulator.cost`) are all
pure re-expressions of slower reference code.  Every test here compares
raw bytes — losses, per-parameter gradients, Adam moment state, trained
weights, cost-model cycles — against the reference path, because "close"
is not the contract: the contract is *identical*.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.loopinfo import analyze_loop
from repro.frontend import parse_source
from repro.ir.lowering import lower_unit
from repro.machine.description import avx2_machine, avx512_machine
from repro.nn import Tensor, ops
from repro.rl.fused_update import FusedUpdater, supports_fused_update
from repro.rl.policy import make_policy
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.rl.spaces import (
    ContinuousJointSpace,
    ContinuousPairSpace,
    DiscreteFactorSpace,
)
from repro.simulator import cost as cost_mod
from repro.simulator.cost import (
    _candidate_grid,
    _estimate_iteration_cycles_uncached,
    estimate_iteration_cycles,
    estimate_working_set,
    sweep_iteration_costs,
)


def _discrete_space(*sizes):
    return DiscreteFactorSpace(
        menus=tuple(tuple(range(1, size + 1)) for size in sizes)
    )


class _NullEnv:
    def set_action_spaces(self, spaces):
        pass


def _synth_batch(spaces, rng, count, observation_dim):
    names = list(spaces)
    observations = rng.standard_normal((count, observation_dim))
    max_dims = max(
        (len(space.sizes) if getattr(space, "sizes", None) else space.dims)
        for space in spaces.values()
    )
    tasks = [names[i % len(names)] for i in range(count)]
    actions = np.zeros((count, max_dims), dtype=np.float64)
    for i, task in enumerate(tasks):
        space = spaces[task]
        if getattr(space, "sizes", None):
            for j, size in enumerate(space.sizes):
                actions[i, j] = rng.integers(0, size)
        else:
            actions[i, : space.dims] = rng.uniform(0.05, 0.95, size=space.dims)
    old_log_probs = rng.standard_normal(count) * 0.3 - 1.0
    rewards = rng.standard_normal(count)
    values = rng.standard_normal(count) * 0.5
    return observations, actions, old_log_probs, rewards, values, tasks


def _run_training(kind, spaces, conditioning, fused, *, count=97, updates=3,
                  minibatch=16, epochs=3, observation_dim=6):
    policy = make_policy(
        kind,
        observation_dim,
        hidden_sizes=(16, 8),
        seed=3,
        spaces=spaces,
        conditioning=conditioning,
    )
    config = PPOConfig(
        minibatch_size=minibatch, epochs_per_batch=epochs, fused_update=fused
    )
    trainer = PPOTrainer(_NullEnv(), policy, config)
    rng = np.random.default_rng(77)
    metrics = []
    for _ in range(updates):
        batch = _synth_batch(spaces, rng, count, observation_dim)
        metrics.append(trainer.update(*batch[:5], task_names=batch[5]))
    return trainer, metrics


def _fingerprint(trainer):
    weights = [p.data.tobytes() for p in trainer.policy.parameters()]
    grads = [
        None if p.grad is None else p.grad.tobytes()
        for p in trainer.policy.parameters()
    ]
    moments = []
    for p in trainer.policy.parameters():
        first = trainer.optimizer._first_moment.get(id(p))
        second = trainer.optimizer._second_moment.get(id(p))
        moments.append(
            (
                None if first is None else first.tobytes(),
                None if second is None else second.tobytes(),
            )
        )
    return weights, grads, moments


ARCHITECTURES = [
    pytest.param(
        "discrete",
        {"a": DiscreteFactorSpace(), "b": _discrete_space(4, 3, 2)},
        "banks",
        id="discrete-banks",
    ),
    pytest.param(
        "continuous2",
        {"a": ContinuousPairSpace(), "b": ContinuousPairSpace()},
        "banks",
        id="gaussian-banks",
    ),
    pytest.param(
        "discrete",
        {
            "a": DiscreteFactorSpace(),
            "b": _discrete_space(4, 3, 2),
            "c": _discrete_space(5, 2),
        },
        "embedding",
        id="discrete-embedding",
    ),
    pytest.param(
        "continuous1",
        {"a": ContinuousJointSpace(), "b": ContinuousJointSpace()},
        "embedding",
        id="gaussian-embedding",
    ),
]


class TestFusedUpdateByteIdentity:
    """The fused kernel must be indistinguishable from the graph path."""

    @pytest.mark.parametrize("kind,spaces,conditioning", ARCHITECTURES)
    def test_training_identity(self, kind, spaces, conditioning):
        graph_trainer, graph_metrics = _run_training(
            kind, spaces, conditioning, fused=False
        )
        fused_trainer, fused_metrics = _run_training(
            kind, spaces, conditioning, fused=None
        )
        assert fused_trainer._fused is not None, "fused path did not engage"
        assert graph_metrics == fused_metrics
        assert _fingerprint(graph_trainer) == _fingerprint(fused_trainer)

    def test_single_task_identity(self):
        spaces = {"only": DiscreteFactorSpace()}
        graph_trainer, graph_metrics = _run_training(
            "discrete", spaces, "banks", fused=False
        )
        fused_trainer, fused_metrics = _run_training(
            "discrete", spaces, "banks", fused=None
        )
        assert graph_metrics == fused_metrics
        assert _fingerprint(graph_trainer) == _fingerprint(fused_trainer)

    def test_fused_update_true_raises_on_unsupported_policy(self):
        class Opaque:
            def parameters(self):
                return []

        with pytest.raises(ValueError):
            PPOTrainer(_NullEnv(), Opaque(), PPOConfig(fused_update=True))

    def test_supports_fused_update_detects_standard_policies(self):
        policy = make_policy("discrete", 6, hidden_sizes=(8,), seed=0)
        assert supports_fused_update(policy)
        assert FusedUpdater.create(policy, None, PPOConfig()) is not None

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        minibatch=st.integers(min_value=1, max_value=97),
        epochs=st.integers(min_value=1, max_value=3),
        count=st.integers(min_value=4, max_value=60),
    )
    def test_identity_over_random_minibatch_sizes(self, minibatch, epochs, count):
        spaces = {"a": DiscreteFactorSpace(), "b": _discrete_space(4, 3, 2)}
        graph_trainer, graph_metrics = _run_training(
            "discrete", spaces, "banks", fused=False,
            count=count, updates=1, minibatch=minibatch, epochs=epochs,
        )
        fused_trainer, fused_metrics = _run_training(
            "discrete", spaces, "banks", fused=None,
            count=count, updates=1, minibatch=minibatch, epochs=epochs,
        )
        assert graph_metrics == fused_metrics
        assert _fingerprint(graph_trainer) == _fingerprint(fused_trainer)


class TestFusedOps:
    """The fused graph nodes must match the historical op chains bitwise."""

    def _raw_surrogate(self, log_probs, old_log_probs, advantages, low, high):
        ratio = ops.exp(ops.sub(log_probs, Tensor.ensure(old_log_probs)))
        unclipped = ops.mul(ratio, Tensor.ensure(advantages))
        clipped = ops.mul(
            ops.clip(ratio, low, high), Tensor.ensure(advantages)
        )
        return ops.mul(ops.mean(ops.minimum(unclipped, clipped)), -1.0)

    def test_ppo_surrogate_matches_raw_chain(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            count = int(rng.integers(1, 64))
            log_probs_data = rng.standard_normal(count)
            old = rng.standard_normal(count)
            advantages = rng.standard_normal(count)

            raw_input = Tensor(log_probs_data.copy(), requires_grad=True)
            raw = self._raw_surrogate(raw_input, old, advantages, 0.8, 1.2)
            raw.backward()

            fused_input = Tensor(log_probs_data.copy(), requires_grad=True)
            fused = ops.ppo_surrogate(fused_input, old, advantages, 0.8, 1.2)
            fused.backward()

            assert fused.data.tobytes() == raw.data.tobytes()
            assert fused_input.grad.tobytes() == raw_input.grad.tobytes()

    def test_entropy_from_logits_matches_raw_chain(self):
        rng = np.random.default_rng(6)
        for _ in range(10):
            shape = (int(rng.integers(1, 16)), int(rng.integers(2, 9)))
            logits_data = rng.standard_normal(shape)
            seed = rng.standard_normal(shape[0])

            raw_input = Tensor(logits_data.copy(), requires_grad=True)
            softmax = ops.softmax(raw_input, axis=-1)
            log_softmax = ops.log_softmax(raw_input, axis=-1)
            raw = ops.mul(
                ops.sum(ops.mul(softmax, log_softmax), axis=-1), -1.0
            )
            raw.backward(seed)

            fused_input = Tensor(logits_data.copy(), requires_grad=True)
            fused = ops.entropy_from_logits(fused_input)
            fused.backward(seed)

            assert fused.data.tobytes() == raw.data.tobytes()
            assert fused_input.grad.tobytes() == raw_input.grad.tobytes()


SAXPY = (
    "float x[4096], y[4096];\n"
    "void f(float a) { for (int i = 0; i < 4096; i++) y[i] = a * x[i] + y[i]; }"
)
REDUCTION = (
    "float a[4096], b[4096];\n"
    "float f() { float s = 0; for (int i = 0; i < 4096; i++) "
    "s += a[i] * b[i]; return s; }"
)
PREDICATED = (
    "float a[4096], b[4096];\n"
    "void f() { for (int i = 0; i < 4096; i++) { if (a[i] > 0) b[i] = a[i]; } }"
)
GATHER = (
    "int idx[4096]; float a[4096], b[4096];\n"
    "void f() { for (int i = 0; i < 4096; i++) b[i] = a[idx[i]]; }"
)


def _analysis(source):
    functions = lower_unit(parse_source(source))
    function = next(iter(functions.values()))
    loop = function.innermost_loops()[0]
    return analyze_loop(function, loop)


class TestCostSweepByteIdentity:
    """The one-pass (VF, IF) sweep must reproduce the scalar model exactly."""

    @pytest.mark.parametrize(
        "source", [SAXPY, REDUCTION, PREDICATED, GATHER],
        ids=["saxpy", "reduction", "predicated", "gather"],
    )
    @pytest.mark.parametrize("machine_factory", [avx2_machine, avx512_machine],
                             ids=["avx2", "avx512"])
    @pytest.mark.parametrize("if_converted", [False, True])
    def test_sweep_matches_scalar_model(self, source, machine_factory, if_converted):
        machine = machine_factory()
        reference_analysis = _analysis(source)
        working_set = estimate_working_set(reference_analysis, 4096)
        expected = {
            config: _estimate_iteration_cycles_uncached(
                reference_analysis, machine, config[0], config[1],
                working_set, if_converted,
            )
            for config in _candidate_grid(machine)
        }

        swept_analysis = _analysis(source)  # cold memo: forces a sweep
        for config, reference in expected.items():
            swept = estimate_iteration_cycles(
                swept_analysis, machine, config[0], config[1],
                working_set, if_converted,
            )
            assert swept.cycles == reference.cycles
            assert swept.bound_by == reference.bound_by
            assert swept.components == reference.components

    def test_sweep_disabled_matches_enabled(self):
        machine = avx2_machine()
        analysis_on = _analysis(SAXPY)
        analysis_off = _analysis(SAXPY)
        working_set = estimate_working_set(analysis_on, 4096)
        assert working_set == estimate_working_set(analysis_off, 4096)
        original = cost_mod.SWEEP_ENABLED
        try:
            cost_mod.SWEEP_ENABLED = True
            swept = sweep_iteration_costs(analysis_on, machine, working_set)
            cost_mod.SWEEP_ENABLED = False
            for config, from_sweep in swept.items():
                scalar = estimate_iteration_cycles(
                    analysis_off, machine, config[0], config[1], working_set
                )
                assert from_sweep.cycles == scalar.cycles
                assert from_sweep.components == scalar.components
        finally:
            cost_mod.SWEEP_ENABLED = original

    def test_off_grid_configuration_is_included(self):
        machine = avx2_machine()
        analysis = _analysis(SAXPY)
        working_set = estimate_working_set(analysis, 4096)
        # Arm and fire the group sweep with two grid queries, then ask for
        # an off-grid point: the require= path must batch it in.
        estimate_iteration_cycles(analysis, machine, 2, 1, working_set)
        estimate_iteration_cycles(analysis, machine, 4, 1, working_set)
        odd = estimate_iteration_cycles(analysis, machine, 3, 5, working_set)
        reference = _estimate_iteration_cycles_uncached(
            _analysis(SAXPY), machine, 3, 5, working_set, False
        )
        assert odd.cycles == reference.cycles
        assert odd.components == reference.components

    def test_memo_stats_count_sweeps_and_hits(self):
        cost_mod.reset_memo_stats()
        machine = avx2_machine()
        analysis = _analysis(SAXPY)
        working_set = estimate_working_set(analysis, 4096)
        grid = _candidate_grid(machine)
        for config in grid:
            estimate_iteration_cycles(
                analysis, machine, config[0], config[1], working_set
            )
        stats = cost_mod.memo_stats()
        assert stats["sweeps"] == 1
        # (1, 1) went through the scalar path, the first vector miss armed
        # the group (scalar path too), and the second vector miss swept the
        # rest of the grid.
        assert stats["swept_configs"] == len(grid) - 2
        # Three misses at most ((1,1), arming vector, sweeping vector);
        # every later grid point was a hit.
        assert stats["iteration_misses"] <= 3
        assert stats["iteration_hits"] >= len(grid) - 3
        assert 0.0 < stats["iteration_hit_rate"] <= 1.0

    def test_one_shot_vector_query_does_not_sweep(self):
        # The RL rollout path rewrites source per action, so each analysis
        # sees exactly one vector configuration; sweeping a whole grid
        # nobody reads back would be pure overhead there.
        cost_mod.reset_memo_stats()
        machine = avx2_machine()
        analysis = _analysis(SAXPY)
        working_set = estimate_working_set(analysis, 4096)
        estimate_iteration_cycles(analysis, machine, 4, 2, working_set)
        stats = cost_mod.memo_stats()
        assert stats["sweeps"] == 0
        assert stats["swept_configs"] == 0

    def test_explicit_grid_api_sweeps_immediately(self):
        cost_mod.reset_memo_stats()
        machine = avx2_machine()
        analysis = _analysis(SAXPY)
        working_set = estimate_working_set(analysis, 4096)
        sweep_iteration_costs(analysis, machine, working_set)
        stats = cost_mod.memo_stats()
        assert stats["sweeps"] == 1
        assert stats["swept_configs"] == len(_candidate_grid(machine))

    def test_callers_get_fresh_objects(self):
        machine = avx2_machine()
        analysis = _analysis(SAXPY)
        working_set = estimate_working_set(analysis, 4096)
        first = estimate_iteration_cycles(analysis, machine, 4, 2, working_set)
        first.components["compute"] = -1.0
        second = estimate_iteration_cycles(analysis, machine, 4, 2, working_set)
        assert second.components["compute"] != -1.0


class TestCacheStatsWiring:
    def test_pipeline_reports_cost_memo_counters(self):
        from repro.core.pipeline import CompileAndMeasure

        stats = CompileAndMeasure().simulator_memo_stats()
        for key in (
            "cost_iteration_hits",
            "cost_iteration_misses",
            "cost_iteration_hit_rate",
            "cost_sweeps",
            "cost_swept_configs",
        ):
            assert key in stats

    def test_cache_stats_table_renders_sweep_rows(self):
        from repro.evaluation.report import format_cache_stats_table

        class Stats:
            lookups = 2
            hits = 1
            misses = 1
            batch_deduplicated = 0
            evictions = 0
            hit_rate = 0.5
            compiles_avoided = 1

        memo = {
            "hits": 1, "misses": 1, "evictions": 0, "hit_rate": 0.5,
            "entries": 1, "playbook_entries": 0,
            "cost_iteration_hits": 34, "cost_iteration_misses": 2,
            "cost_iteration_hit_rate": 34 / 36, "cost_sweeps": 1,
            "cost_swept_configs": 35,
        }
        rendered = str(format_cache_stats_table(Stats(), simulator_memo=memo))
        assert "cost grid sweeps" in rendered
        assert "cost configs prepaid" in rendered
