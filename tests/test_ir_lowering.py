"""IR lowering tests."""

import pytest

from repro.frontend import parse_source
from repro.ir.dtypes import FLOAT32, INT16, INT32
from repro.ir.expr import BinOp, Convert, LoadOp, Select
from repro.ir.lowering import LoweringContext, lower_function, lower_unit
from repro.ir.nodes import Conditional, Loop, Statement
from repro.ir.verifier import verify_function


def lower(source, name=None, bindings=None):
    unit = parse_source(source)
    functions = lower_unit(
        unit, context=LoweringContext(bindings=dict(bindings or {}))
    )
    for function in functions.values():
        verify_function(function)
    if name is None:
        return next(iter(functions.values()))
    return functions[name]


class TestLoopLowering:
    def test_simple_counted_loop(self):
        ir = lower("int a[64];\nvoid f() { for (int i = 0; i < 64; i++) a[i] = i; }")
        loop = ir.innermost_loops()[0]
        assert loop.var == "i"
        assert loop.step == 1
        assert loop.trip_count == 64

    def test_strided_loop_step(self):
        ir = lower("int a[64];\nvoid f() { for (int i = 0; i < 64; i += 2) a[i] = i; }")
        loop = ir.innermost_loops()[0]
        assert loop.step == 2
        assert loop.trip_count == 32

    def test_symbolic_bound_has_unknown_trip(self):
        ir = lower("void f(int *a, int n) { for (int i = 0; i < n; i++) a[i] = i; }")
        assert ir.innermost_loops()[0].trip_count is None

    def test_symbolic_bound_with_binding(self):
        ir = lower(
            "void f(int *a, int n) { for (int i = 0; i < n; i++) a[i] = i; }",
            bindings={"n": 100},
        )
        assert ir.innermost_loops()[0].trip_count == 100

    def test_le_condition(self):
        ir = lower("int a[65];\nvoid f() { for (int i = 0; i <= 64; i++) a[i] = i; }")
        assert ir.innermost_loops()[0].trip_count == 65

    def test_nested_loop_structure(self):
        ir = lower(
            "float G[8][8];\nvoid f(float x) {"
            " for (int i = 0; i < 8; i++) for (int j = 0; j < 8; j++) G[i][j] = x; }"
        )
        assert len(ir.all_loops()) == 2
        assert len(ir.innermost_loops()) == 1
        assert ir.innermost_loops()[0].var == "j"

    def test_pragma_carried_to_ir(self):
        ir = lower(
            "int a[8];\nvoid f() {"
            " #pragma clang loop vectorize_width(8) interleave_count(2)\n"
            " for (int i = 0; i < 8; i++) a[i] = i; }"
        )
        loop = ir.innermost_loops()[0]
        assert loop.pragma.vectorize_width == 8

    def test_while_loop_counted_pattern(self):
        ir = lower(
            "void f(int *a, int n) { int i = 0; while (i < n) { a[i] = i; i++; } }"
        )
        loop = ir.innermost_loops()[0]
        assert loop.var == "i"
        assert not loop.has_early_exit

    def test_break_marks_early_exit(self):
        ir = lower(
            "void f(int *a) { for (int i = 0; i < 8; i++) { if (a[i]) break; a[i] = 1; } }"
        )
        assert ir.innermost_loops()[0].has_early_exit

    def test_call_marks_has_calls(self):
        ir = lower("void f(int *a) { for (int i = 0; i < 8; i++) log_value(a[i]); }")
        assert ir.innermost_loops()[0].has_calls

    def test_math_intrinsic_does_not_mark_calls(self):
        ir = lower(
            "double a[8], b[8];\nvoid f() { for (int i = 0; i < 8; i++) b[i] = sqrt(a[i]); }"
        )
        assert not ir.innermost_loops()[0].has_calls

    def test_decrementing_loop(self):
        ir = lower("int a[64];\nvoid f() { for (int i = 63; i >= 0; i--) a[i] = i; }")
        loop = ir.innermost_loops()[0]
        assert loop.step == -1


class TestStatementLowering:
    def test_store_statement(self):
        ir = lower("float a[8], b[8];\nvoid f() { for (int i = 0; i < 8; i++) a[i] = b[i]; }")
        statement = ir.innermost_loops()[0].statements()[0]
        assert statement.kind == "store"
        assert statement.target_array == "a"
        assert isinstance(statement.value, LoadOp)

    def test_compound_store_expands_to_load_plus_op(self):
        ir = lower("int a[8], b[8];\nvoid f() { for (int i = 0; i < 8; i++) a[i] += b[i]; }")
        statement = ir.innermost_loops()[0].statements()[0]
        assert statement.compound_op == "+"
        assert isinstance(statement.value, BinOp)
        assert len(statement.value.loads()) == 2

    def test_scalar_reduction_statement(self):
        ir = lower(
            "int a[8];\nint f() { int s = 0; for (int i = 0; i < 8; i++) s += a[i]; return s; }"
        )
        loop = ir.innermost_loops()[0]
        statement = loop.statements()[0]
        assert statement.kind == "scalar"
        assert statement.target_scalar == "s"

    def test_cast_becomes_convert(self):
        ir = lower(
            "void f(int *a, short *b) { for (int i = 0; i < 8; i++) a[i] = (int) b[i]; }"
        )
        statement = ir.innermost_loops()[0].statements()[0]
        assert isinstance(statement.value, Convert)
        assert statement.value.from_dtype == INT16
        assert statement.value.dtype == INT32

    def test_ternary_becomes_select(self):
        ir = lower(
            "void f(int *a, int *b, int m) {"
            " for (int i = 0; i < 8; i++) { int j = a[i]; b[i] = (j > m ? m : 0); } }"
        )
        statements = ir.innermost_loops()[0].statements()
        assert any(isinstance(s.value, Select) for s in statements)

    def test_if_becomes_conditional(self):
        ir = lower(
            "float a[8], b[8];\nvoid f() {"
            " for (int i = 0; i < 8; i++) { if (a[i] > 0) { b[i] = a[i]; } } }"
        )
        loop = ir.innermost_loops()[0]
        assert len(loop.conditionals()) == 1

    def test_store_coerces_value_dtype(self):
        ir = lower("float a[8];\nvoid f(int x) { for (int i = 0; i < 8; i++) a[i] = x; }")
        statement = ir.innermost_loops()[0].statements()[0]
        assert statement.dtype == FLOAT32

    def test_return_becomes_scalar_statement(self):
        ir = lower("int f() { return 42; }")
        statements = ir.statements()
        assert any(s.target_scalar == "__return__" for s in statements)

    def test_multidim_store_subscripts(self):
        ir = lower("float G[4][8];\nvoid f(float x) {"
                   " for (int i = 0; i < 4; i++) for (int j = 0; j < 8; j++) G[i][j] = x; }")
        statement = ir.innermost_loops()[0].statements()[0]
        assert len(statement.target_subscripts) == 2


class TestSymbols:
    def test_global_arrays_registered(self):
        ir = lower("float a[16];\nvoid f() { }")
        assert ir.arrays["a"].dtype == FLOAT32
        assert ir.arrays["a"].dims == (16,)
        assert ir.arrays["a"].is_global

    def test_pointer_parameter_becomes_array(self):
        ir = lower("void f(short *p) { p[0] = 1; }")
        assert ir.arrays["p"].dtype == INT16
        assert ir.arrays["p"].is_parameter

    def test_scalar_parameters_registered(self):
        ir = lower("void f(float alpha, int n) { }")
        assert ir.parameters["alpha"] == FLOAT32
        assert ir.parameters["n"] == INT32

    def test_alignment_attribute_kept(self):
        ir = lower("int vec[512] __attribute__((aligned(32)));\nvoid f() { vec[0] = 1; }")
        assert ir.arrays["vec"].alignment == 32

    def test_local_array_registered(self):
        ir = lower("void f() { int buffer[32]; for (int i = 0; i < 32; i++) buffer[i] = i; }")
        assert "buffer" in ir.arrays
        assert not ir.arrays["buffer"].is_global


class TestStructureQueries:
    def test_enclosing_loops_chain(self):
        ir = lower(
            "float G[4][4];\nvoid f(float x) {"
            " for (int i = 0; i < 4; i++) for (int j = 0; j < 4; j++) G[i][j] = x; }"
        )
        inner = ir.innermost_loops()[0]
        chain = ir.enclosing_loops(inner)
        assert [loop.var for loop in chain] == ["i", "j"]

    def test_parent_map(self):
        ir = lower(
            "float G[4][4];\nvoid f(float x) {"
            " for (int i = 0; i < 4; i++) for (int j = 0; j < 4; j++) G[i][j] = x; }"
        )
        parents = ir.parent_map()
        inner = ir.innermost_loops()[0]
        assert parents[inner.loop_id].var == "i"

    def test_loop_depth_below(self):
        ir = lower(
            "float A[4][4][4];\nvoid f(float x) {"
            " for (int i = 0; i < 4; i++) for (int j = 0; j < 4; j++)"
            " for (int k = 0; k < 4; k++) A[i][j][k] = x; }"
        )
        assert ir.top_level_loops()[0].depth_below == 3

    def test_statements_recursive_flag(self):
        ir = lower(
            "int a[4];\nvoid f() { for (int i = 0; i < 4; i++) {"
            " a[i] = 0; for (int j = 0; j < 4; j++) a[j] = j; } }"
        )
        outer = ir.top_level_loops()[0]
        assert len(outer.statements(recursive=True)) == 2
        assert len(outer.statements(recursive=False)) == 1
