"""Tests for the transfer stack: conditioned policy, splits, fine-tuning.

The guarantees pinned here:

* ``make_policy(conditioning="banks")`` is the PR-5 head-bank network to
  the byte: construction, sampling (including the RNG stream state) and
  Adam updates match a directly-constructed ``MultiTaskPolicy`` exactly;
* the embedding-conditioned policy keeps the batched-inference contract
  (``act_batch`` == N serial ``act`` calls, bit for bit) and its
  ``evaluate`` reproduces the sampled log-probs — property-tested over
  random same-arity menu sets and task subsets;
* a frozen-trunk fine-tune moves *only* the target task's embedding row
  and head stack: the trunk, the new-task prior and every other task's
  embedding row keep their exact bytes across ten optimizer steps;
* kernel splits are seed-stable across processes (regardless of
  ``PYTHONHASHSEED``), disjoint, covering, and leakage-checked — a
  comparison whose "held-out" kernels were trained on is rejected;
* ``compare_all_tasks(kernel_split=...)`` emits the generalization
  matrix for every trained task, and the compile service serves every
  task of one conditioned policy in a single coalesced tick.
"""

from __future__ import annotations

import os
import subprocess
import sys
from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.framework import NeuroVectorizer, TrainingConfig
from repro.datasets.kernels import LoopKernel
from repro.evaluation.comparison import GeneralizationMatrix, SplitComparison
from repro.evaluation.splits import KernelSplit, split_kernels
from repro.nn import ops
from repro.nn.optim import Adam
from repro.rl.policy import ConditionedPolicy, MultiTaskPolicy, make_policy
from repro.rl.spaces import DiscreteFactorSpace
from repro.serving import CompileRequest, CompileService
from repro.tasks import get_task

ALL_TASKS = ("vectorization", "polly-tiling", "unrolling")

SOURCES = {
    "dot": """
float a[2048], b[2048];
float dot() {
    float s = 0;
    for (int i = 0; i < 2048; i++) {
        s += a[i] * b[i];
    }
    return s;
}
""",
    "scale": """
float x[2048], y[2048];
void scale(float alpha) {
    for (int i = 0; i < 2048; i++) {
        y[i] = alpha * x[i];
    }
}
""",
    "saxpy": """
float u[2048], v[2048];
void saxpy(float alpha) {
    for (int i = 0; i < 2048; i++) {
        v[i] = alpha * u[i] + v[i];
    }
}
""",
    "shift": """
int p[2048], q[2048];
void shift() {
    for (int i = 0; i < 2048; i++) {
        q[i] = p[i] + 3;
    }
}
""",
}

FUNCTION_NAMES = {"dot": "dot", "scale": "scale", "saxpy": "saxpy", "shift": "shift"}


def suite():
    return [
        LoopKernel(name=name, source=source, function_name=FUNCTION_NAMES[name])
        for name, source in SOURCES.items()
    ]


def snapshot(module):
    return [parameter.data.copy() for parameter in module.parameters()]


def bytes_equal(before, after):
    return all(
        a.shape == b.shape and np.array_equal(a, b) for a, b in zip(before, after)
    )


# ---------------------------------------------------------------------------
# Satellite 1: conditioning="banks" is the PR-5 network, byte for byte
# ---------------------------------------------------------------------------


class TestBanksByteIdentity:
    def _spaces(self):
        return OrderedDict(
            (name, get_task(name).action_space("discrete"))
            for name in ("vectorization", "unrolling")
        )

    def _pair(self, seed=3):
        spaces = self._spaces()
        via_factory = make_policy(
            "discrete", 10, spaces=spaces, seed=seed, conditioning="banks"
        )
        direct = MultiTaskPolicy(10, spaces, seed=seed)
        return via_factory, direct

    def test_construction_is_byte_identical(self):
        via_factory, direct = self._pair()
        assert type(via_factory) is MultiTaskPolicy
        factory_state = via_factory.state_dict()
        direct_state = direct.state_dict()
        assert factory_state.keys() == direct_state.keys()
        for key in factory_state:
            assert np.array_equal(factory_state[key], direct_state[key])

    def test_sampling_and_rng_stream_are_byte_identical(self):
        via_factory, direct = self._pair()
        observations = np.random.default_rng(0).normal(size=(6, 10))
        for row in observations:
            for task in ("vectorization", "unrolling"):
                a = via_factory.act(row, task=task)
                b = direct.act(row, task=task)
                assert np.array_equal(a.action, b.action)
                assert a.log_prob == b.log_prob
                assert a.value == b.value
        assert (
            via_factory.rng.bit_generator.state == direct.rng.bit_generator.state
        )

    def test_adam_updates_are_byte_identical(self):
        via_factory, direct = self._pair()
        rng = np.random.default_rng(1)
        observations = rng.normal(size=(8, 10))
        actions = np.stack(
            [rng.integers(0, 2, size=8), rng.integers(0, 2, size=8)], axis=1
        )
        for policy in (via_factory, direct):
            optimizer = Adam(policy.parameters(), 1e-2)
            for _ in range(3):
                optimizer.zero_grad()
                log_probs, entropy, values = policy.evaluate(
                    observations, actions, task="vectorization"
                )
                loss = ops.mean(ops.add(log_probs, ops.add(entropy, values)))
                loss.backward()
                optimizer.step()
        factory_state = via_factory.state_dict()
        direct_state = direct.state_dict()
        for key in factory_state:
            assert np.array_equal(factory_state[key], direct_state[key])

    def test_default_for_joint_spaces_is_embedding(self):
        spaces = self._spaces()
        joint = make_policy("discrete", 10, spaces=spaces, seed=0)
        assert isinstance(joint, ConditionedPolicy)
        single = make_policy(
            "discrete",
            10,
            spaces=OrderedDict([("vectorization", spaces["vectorization"])]),
            seed=0,
        )
        assert type(single) is MultiTaskPolicy


# ---------------------------------------------------------------------------
# Satellite 2: property tests over random menus and task subsets
# ---------------------------------------------------------------------------


def menu_sets():
    """Random same-arity menu sets: 1-3 factors of 2-4 choices each."""
    return st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=3)


def conditioned(sizes, task_count, seed, observation_dim=6):
    menus = tuple(tuple(range(size)) for size in sizes)
    spaces = OrderedDict(
        (f"task{i}", DiscreteFactorSpace(menus)) for i in range(task_count)
    )
    return ConditionedPolicy(
        observation_dim, spaces, hidden_sizes=(16, 16), seed=seed, task_embed_dim=4
    )


class TestConditionedProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        sizes=menu_sets(),
        task_count=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    def test_act_batch_matches_serial_act_bytewise(
        self, sizes, task_count, seed, data
    ):
        batch = data.draw(st.integers(min_value=1, max_value=7))
        names = [
            data.draw(st.sampled_from([f"task{i}" for i in range(task_count)]))
            for _ in range(batch)
        ]
        observations = np.random.default_rng(seed).normal(size=(batch, 6))
        batched_policy = conditioned(sizes, task_count, seed)
        serial_policy = conditioned(sizes, task_count, seed)

        batched = batched_policy.act_batch(observations, tasks=names)
        serial = [
            serial_policy.act(observations[i], task=names[i]) for i in range(batch)
        ]
        for a, b in zip(batched, serial):
            assert np.array_equal(a.action, b.action)
            assert a.log_prob == b.log_prob
            assert a.value == b.value
        assert (
            batched_policy.rng.bit_generator.state
            == serial_policy.rng.bit_generator.state
        )

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        sizes=menu_sets(),
        task_count=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_evaluate_round_trips_sampled_log_probs(self, sizes, task_count, seed):
        policy = conditioned(sizes, task_count, seed)
        observations = np.random.default_rng(seed + 1).normal(size=(5, 6))
        for name in policy.task_names:
            outputs = policy.act_batch(observations, task=name)
            actions = np.stack([output.action for output in outputs])
            log_probs, _entropy, values = policy.evaluate(
                observations, actions, task=name
            )
            assert np.allclose(
                log_probs.data, [output.log_prob for output in outputs]
            )
            assert np.allclose(values.data, [output.value for output in outputs])

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        sizes=menu_sets(),
        task_count=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_frozen_fine_tune_moves_only_the_new_task(
        self, sizes, task_count, seed
    ):
        policy = conditioned(sizes, task_count, seed)
        menus = tuple(tuple(range(size)) for size in sizes)
        row = policy.add_task("fresh", DiscreteFactorSpace(menus))
        assert np.array_equal(row.data, policy.new_task_init.data)

        trunk_before = snapshot(policy.trunk)
        prior_before = policy.new_task_init.data.copy()
        rows_before = {
            name: policy.task_embeddings[name].data.copy()
            for name in policy.task_names
            if name != "fresh"
        }
        stacks_before = {
            name: snapshot(policy.heads_for(name))
            for name in policy.task_names
            if name != "fresh"
        }
        fresh_row_before = row.data.copy()

        rng = np.random.default_rng(seed + 2)
        observations = rng.normal(size=(6, 6))
        actions = np.stack(
            [rng.integers(0, size, size=6) for size in sizes], axis=1
        )
        optimizer = Adam(policy.transfer_parameters("fresh"), 1e-2)
        for _ in range(10):
            policy.zero_grad()
            log_probs, entropy, values = policy.evaluate(
                observations, actions, task="fresh"
            )
            loss = ops.mean(ops.add(log_probs, ops.add(entropy, values)))
            loss.backward()
            optimizer.step()

        assert bytes_equal(trunk_before, snapshot(policy.trunk))
        assert np.array_equal(prior_before, policy.new_task_init.data)
        for name, before in rows_before.items():
            assert np.array_equal(before, policy.task_embeddings[name].data)
        for name, before in stacks_before.items():
            assert bytes_equal(before, snapshot(policy.heads_for(name)))
        assert not np.array_equal(fresh_row_before, row.data)

    def test_shared_stack_private_for_added_tasks(self):
        policy = conditioned([3, 3], task_count=2, seed=0)
        # Same arity at construction -> one shared stack.
        assert policy.heads_for("task0") is policy.heads_for("task1")
        policy.add_task("later", DiscreteFactorSpace(((0, 1, 2), (0, 1, 2))))
        # Same arity via add_task -> private stack (transfer isolation).
        assert policy.heads_for("later") is not policy.heads_for("task0")


# ---------------------------------------------------------------------------
# Satellite 3: split integrity
# ---------------------------------------------------------------------------


class TestKernelSplits:
    NAMES = [f"kernel{i:02d}" for i in range(12)]

    def test_disjoint_and_covering(self):
        for fraction in (0.1, 0.25, 0.5, 0.75):
            for seed in range(5):
                split = split_kernels(self.NAMES, fraction, seed=seed)
                assert set(split.train).isdisjoint(split.test)
                assert sorted(split.train + split.test) == sorted(self.NAMES)
                assert split.train and split.test

    def test_seed_changes_the_partition(self):
        partitions = {
            split_kernels(self.NAMES, 0.5, seed=seed).test for seed in range(8)
        }
        assert len(partitions) > 1

    def test_stable_across_processes_and_hash_seeds(self):
        script = (
            "from repro.evaluation.splits import split_kernels\n"
            f"split = split_kernels({self.NAMES!r}, 0.25, seed=7)\n"
            "print(split.train); print(split.test)\n"
        )
        outputs = []
        for hash_seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", env.get("PYTHONPATH", "")])
            )
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert result.returncode == 0, result.stderr
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        reference = split_kernels(self.NAMES, 0.25, seed=7)
        assert outputs[0] == f"{reference.train}\n{reference.test}\n"

    def test_validation(self):
        with pytest.raises(ValueError, match="duplicate"):
            split_kernels(["a", "a", "b"], 0.5)
        with pytest.raises(ValueError, match="fraction"):
            split_kernels(["a", "b"], 1.5)
        with pytest.raises(ValueError, match="at least"):
            split_kernels(["solo"], 0.5)
        with pytest.raises(ValueError, match="at least one held-out"):
            KernelSplit(train=("a",), test=())
        with pytest.raises(ValueError, match="leaks"):
            KernelSplit(train=("a", "b"), test=("b",))
        split = KernelSplit(train=("a",), test=("b",))
        with pytest.raises(ValueError, match="not covered"):
            split.partition(["a", "b", "c"])
        with pytest.raises(ValueError, match="not in the suite"):
            KernelSplit.from_holdout(["a", "b"], ["missing"])

    def test_leakage_detection(self):
        split = KernelSplit(train=("a", "b"), test=("c", "d"))
        split.assert_no_leakage(["a", "b"])
        with pytest.raises(ValueError, match="overlap the run's training"):
            split.assert_no_leakage(["a", "c"])


# ---------------------------------------------------------------------------
# Transfer protocol end to end (+ satellite 4: conditioned serving)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def holdout_framework():
    """Two tasks trained jointly, one task and one kernel held out."""
    kernels = suite()
    config = TrainingConfig(
        tasks=list(ALL_TASKS),
        holdout_task="polly-tiling",
        holdout_kernels=["shift"],
        rl_total_steps=48,
        rl_batch_size=24,
        learning_rate=1e-3,
        pretrain_epochs=0,
        seed=0,
    )
    framework, _artifacts = NeuroVectorizer.train(kernels, config)
    yield framework, kernels
    framework.close()


class TestTransferProtocol:
    def test_holdouts_recorded_and_policy_conditioned(self, holdout_framework):
        framework, _kernels = holdout_framework
        policy = framework.agent.policy
        assert isinstance(policy, ConditionedPolicy)
        assert sorted(policy.task_names) == ["unrolling", "vectorization"]
        assert framework.holdout_task == "polly-tiling"
        assert framework.kernel_split is not None
        assert framework.kernel_split.test == ("shift",)
        assert set(framework.training_kernel_names) == {"dot", "scale", "saxpy"}

    def test_generalization_matrix_replays_training_split(self, holdout_framework):
        framework, kernels = holdout_framework
        matrix = framework.compare_all_tasks(kernels, kernel_split=True)
        assert isinstance(matrix, GeneralizationMatrix)
        assert list(matrix) == [task.name for task in framework.tasks]
        for _name, entry in matrix.items():
            assert isinstance(entry, SplitComparison)
            assert set(entry.train.speedups) == {"dot", "scale", "saxpy"}
            assert set(entry.test.speedups) == {"shift"}
            for side in entry.sides.values():
                assert side.geomean("baseline") == 1.0
        rendered = matrix.format_table().render()
        assert "train" in rendered and "test" in rendered

    def test_leaky_split_is_rejected(self, holdout_framework):
        framework, kernels = holdout_framework
        leaky = KernelSplit(train=("shift", "dot"), test=("scale", "saxpy"))
        with pytest.raises(ValueError, match="overlap the run's training"):
            framework.compare_all_tasks(kernels, kernel_split=leaky)

    def test_replay_without_recorded_split_is_rejected(self):
        framework = NeuroVectorizer.default()
        with pytest.raises(ValueError, match="recorded none"):
            framework.compare_all_tasks(suite(), kernel_split=True)

    def test_fine_tune_freezes_trunk_and_other_tasks(self, holdout_framework):
        framework, kernels = holdout_framework
        policy = framework.agent.policy
        trunk_before = snapshot(policy.trunk)
        rows_before = {
            name: policy.task_embeddings[name].data.copy()
            for name in policy.task_names
        }
        stacks_before = {
            name: snapshot(policy.heads_for(name)) for name in policy.task_names
        }

        history = framework.fine_tune(
            [kernel for kernel in kernels if kernel.name != "shift"],
            total_steps=24,
            batch_size=12,
        )
        assert history.iterations

        assert "polly-tiling" in policy.task_names
        assert bytes_equal(trunk_before, snapshot(policy.trunk))
        for name, before in rows_before.items():
            assert np.array_equal(before, policy.task_embeddings[name].data)
        for name, before in stacks_before.items():
            assert bytes_equal(before, snapshot(policy.heads_for(name)))
        assert "polly-tiling" in [task.name for task in framework.tasks]

        # The fine-tuned task now answers the full per-task surface.
        decisions = framework.decide_sites(kernels[0], task="polly-tiling")
        assert decisions
        matrix = framework.compare_all_tasks(kernels, kernel_split=True)
        assert "polly-tiling" in list(matrix)

    def test_fine_tune_needs_conditioned_policy(self):
        framework = NeuroVectorizer.default()
        with pytest.raises(ValueError, match="conditioning='embedding'"):
            framework.fine_tune(suite(), task="unrolling")


class TestConditionedServing:
    @pytest.fixture(scope="class")
    def joint_framework(self):
        kernels = suite()[:2]
        config = TrainingConfig(
            tasks=list(ALL_TASKS),
            rl_total_steps=48,
            rl_batch_size=24,
            learning_rate=1e-3,
            pretrain_epochs=0,
            seed=0,
        )
        framework, _artifacts = NeuroVectorizer.train(kernels, config)
        yield framework
        framework.close()

    def test_conditioned_policy_serves_every_task_in_one_tick(
        self, joint_framework
    ):
        policy = joint_framework.agent.policy
        assert isinstance(policy, ConditionedPolicy)
        service = CompileService(
            policy,
            joint_framework.embedding_model,
            tasks=list(ALL_TASKS),
            max_batch_size=len(ALL_TASKS),
        )
        futures = [
            service.submit(CompileRequest(source=SOURCES["scale"], task=task))
            for task in ALL_TASKS
        ]
        service.start()
        responses = [future.result(timeout=30) for future in futures]
        service.stop()
        assert all(response.ok for response in responses)
        assert {response.task for response in responses} == set(ALL_TASKS)
        assert all(response.decisions for response in responses)
        assert service.report().ticks == 1

    def test_service_rejects_mismatched_conditioned_menus(self, joint_framework):
        wrong = ConditionedPolicy(
            joint_framework.agent.policy.observation_dim,
            OrderedDict(
                [("unrolling", DiscreteFactorSpace(((1, 2), (3, 4))))]
            ),
        )
        with pytest.raises(ValueError, match="menus"):
            CompileService(
                wrong, joint_framework.embedding_model, tasks=["unrolling"]
            )
